//! A kd-tree index-based detector.
//!
//! The third class of centralized detection algorithms the paper cites
//! (index-based solutions such as DOLPHIN \[4\]). A balanced kd-tree is
//! built over core and support points; each core point then runs a range
//! count with early termination at `k` neighbors. Included as an extension
//! to the paper's two-candidate set `A = {Nested-Loop, Cell-Based}` — its
//! cost model in [`crate::cost`] lets the multi-tactic planner pick it when
//! configured.

use crate::detector::{Detection, DetectionStats, Detector};
use crate::partition::Partition;
use crate::scan::count_tile_excluding;
use dod_core::{Metric, NeighborPredicate, OutlierParams};

/// kd-tree range-counting detector.
#[derive(Debug, Clone, Copy, Default)]
pub struct IndexBased {
    /// Maximum number of points in a leaf node.
    leaf_size: usize,
}

impl IndexBased {
    /// Creates a detector with the given kd-tree leaf size (0 is coerced
    /// to the default of 16).
    pub fn new(leaf_size: usize) -> Self {
        IndexBased {
            leaf_size: if leaf_size == 0 { 16 } else { leaf_size },
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Indices into the partition's **core** set, index-aligned with
        /// `core_coords` (a contiguous columnar tile for the kernel
        /// scans). Kept separate from the support side so the leaf
        /// buffer can be spliced incrementally: an insert appends to one
        /// sub-tile, a removal swap-removes one entry, and neither
        /// disturbs the other side's indices.
        core: Vec<u32>,
        /// The leaf's core coordinates gathered into a contiguous tile.
        core_coords: Vec<f64>,
        /// Indices into the partition's **support** set.
        support: Vec<u32>,
        /// The leaf's support coordinates gathered into a contiguous
        /// tile.
        support_coords: Vec<f64>,
    },
    Inner {
        split_dim: usize,
        split_val: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// Swap-removes the entry holding index `target` from an index-aligned
/// `(indices, coords)` leaf sub-tile. Returns whether it was present.
fn swap_remove_entry(
    indices: &mut Vec<u32>,
    coords: &mut Vec<f64>,
    dim: usize,
    target: u32,
) -> bool {
    let Some(pos) = indices.iter().position(|&x| x == target) else {
        return false;
    };
    indices.swap_remove(pos);
    let last = indices.len();
    if pos < last {
        let (head, tail) = coords.split_at_mut(last * dim);
        head[pos * dim..(pos + 1) * dim].copy_from_slice(&tail[..dim]);
    }
    coords.truncate(last * dim);
    true
}

/// The build-phase product of the Index-Based detector: a balanced
/// kd-tree over a partition's core and support points.
///
/// The tree stores point *indices* only, so it can outlive the build call
/// and serve many queries against the same partition — full
/// re-detections ([`IndexBased::detect_with_index`]) as well as neighbor
/// counts for external query points
/// ([`KdIndex::count_core_neighbors`]) from a resident engine.
#[derive(Debug, Clone)]
pub struct KdIndex {
    root: Node,
    build_ops: u64,
}

impl KdIndex {
    /// Builds the tree over every point of `partition` with the given
    /// leaf size (0 is coerced to 16).
    pub fn build(partition: &Partition, leaf_size: usize) -> KdIndex {
        let leaf_size = if leaf_size == 0 { 16 } else { leaf_size };
        let total = partition.total_len();
        let mut idx: Vec<u32> = (0..total as u32).collect();
        let mut ops = 0u64;
        let root = Self::build_node(partition, &mut idx, leaf_size, 0, &mut ops);
        KdIndex {
            root,
            build_ops: ops,
        }
    }

    /// Number of index operations charged during the build.
    pub fn build_ops(&self) -> u64 {
        self.build_ops
    }

    /// Splices a new core point (index `core_idx` in the partition's
    /// core set) into the leaf buffer its coordinates descend to.
    ///
    /// The tree's balance is not restored — repeated inserts grow leaf
    /// buffers, which stays exact but degrades query cost; callers
    /// compact by rebuilding once enough mutations accumulate.
    pub fn insert_core(&mut self, core_idx: u32, p: &[f64]) {
        let Node::Leaf {
            core, core_coords, ..
        } = Self::leaf_for_mut(&mut self.root, p)
        else {
            unreachable!("leaf_for_mut returns a leaf")
        };
        core.push(core_idx);
        core_coords.extend_from_slice(p);
        self.build_ops += 1;
    }

    /// Splices a new support point (index `support_idx` in the
    /// partition's support set) into its leaf buffer.
    pub fn insert_support(&mut self, support_idx: u32, p: &[f64]) {
        let Node::Leaf {
            support,
            support_coords,
            ..
        } = Self::leaf_for_mut(&mut self.root, p)
        else {
            unreachable!("leaf_for_mut returns a leaf")
        };
        support.push(support_idx);
        support_coords.extend_from_slice(p);
        self.build_ops += 1;
    }

    /// Removes core point `core_idx`, located by the coordinates it was
    /// inserted with.
    pub fn remove_core(&mut self, core_idx: u32, p: &[f64]) {
        Self::remove_in(&mut self.root, p, p.len(), core_idx, true);
    }

    /// Removes support point `support_idx`, located by its coordinates.
    pub fn remove_support(&mut self, support_idx: u32, p: &[f64]) {
        Self::remove_in(&mut self.root, p, p.len(), support_idx, false);
    }

    /// Rewrites the stored core index `from` to `to` — the fix-up after
    /// a swap-remove moved the partition's last core point into slot
    /// `to`.
    pub fn renumber_core(&mut self, from: u32, to: u32, p: &[f64]) {
        Self::renumber_in(&mut self.root, p, from, to, true);
    }

    /// Rewrites the stored support index `from` to `to`.
    pub fn renumber_support(&mut self, from: u32, to: u32, p: &[f64]) {
        Self::renumber_in(&mut self.root, p, from, to, false);
    }

    /// The leaf `p` descends to under the build's split rule (`< split`
    /// goes left, `>= split` goes right).
    fn leaf_for_mut<'a>(node: &'a mut Node, p: &[f64]) -> &'a mut Node {
        match node {
            Node::Leaf { .. } => node,
            Node::Inner {
                split_dim,
                split_val,
                left,
                right,
            } => {
                if p[*split_dim] < *split_val {
                    Self::leaf_for_mut(left, p)
                } else {
                    Self::leaf_for_mut(right, p)
                }
            }
        }
    }

    /// Descends to the leaf(s) that can hold `target` and swap-removes
    /// it. A coordinate equal to a split value must search **both**
    /// subtrees: the median build places equal values on either side.
    fn remove_in(node: &mut Node, p: &[f64], dim: usize, target: u32, core_side: bool) -> bool {
        match node {
            Node::Leaf {
                core,
                core_coords,
                support,
                support_coords,
            } => {
                if core_side {
                    swap_remove_entry(core, core_coords, dim, target)
                } else {
                    swap_remove_entry(support, support_coords, dim, target)
                }
            }
            Node::Inner {
                split_dim,
                split_val,
                left,
                right,
            } => {
                let delta = p[*split_dim] - *split_val;
                if delta < 0.0 {
                    Self::remove_in(left, p, dim, target, core_side)
                } else if delta > 0.0 {
                    Self::remove_in(right, p, dim, target, core_side)
                } else {
                    Self::remove_in(right, p, dim, target, core_side)
                        || Self::remove_in(left, p, dim, target, core_side)
                }
            }
        }
    }

    /// Same descent as [`KdIndex::remove_in`], rewriting index `from`
    /// to `to` in place.
    fn renumber_in(node: &mut Node, p: &[f64], from: u32, to: u32, core_side: bool) -> bool {
        match node {
            Node::Leaf { core, support, .. } => {
                let list = if core_side { core } else { support };
                match list.iter_mut().find(|x| **x == from) {
                    Some(slot) => {
                        *slot = to;
                        true
                    }
                    None => false,
                }
            }
            Node::Inner {
                split_dim,
                split_val,
                left,
                right,
            } => {
                let delta = p[*split_dim] - *split_val;
                if delta < 0.0 {
                    Self::renumber_in(left, p, from, to, core_side)
                } else if delta > 0.0 {
                    Self::renumber_in(right, p, from, to, core_side)
                } else {
                    Self::renumber_in(right, p, from, to, core_side)
                        || Self::renumber_in(left, p, from, to, core_side)
                }
            }
        }
    }

    /// Counts the **core** points of `partition` within distance `r` of an
    /// arbitrary query point `q` (not necessarily part of the partition),
    /// stopping early once `cap` neighbors are found.
    pub fn count_core_neighbors(
        &self,
        partition: &Partition,
        q: &[f64],
        params: OutlierParams,
        cap: usize,
    ) -> usize {
        self.count_core_neighbors_traced(partition, q, params, cap)
            .0
    }

    /// [`KdIndex::count_core_neighbors`] that also returns the work
    /// performed: distance evaluations plus tree nodes visited — the
    /// index-based analogue of points scanned.
    pub fn count_core_neighbors_traced(
        &self,
        partition: &Partition,
        q: &[f64],
        params: OutlierParams,
        cap: usize,
    ) -> (usize, u64) {
        debug_assert_eq!(q.len(), partition.dim());
        let mut count = 0usize;
        let mut evals = 0u64;
        let mut visits = 0u64;
        self.visit(
            &self.root,
            &Query {
                coords: q,
                skip: None,
                core_only: true,
                pred: params.predicate(),
                cap,
            },
            &mut count,
            &mut evals,
            &mut visits,
        );
        (count, evals + visits)
    }

    /// Counts neighbors of resident core point `qi` (core index) within
    /// `r`, stopping early once `k` are found. Returns
    /// `(count_capped_at_k, evals, nodes_visited)`.
    fn count_neighbors(
        &self,
        partition: &Partition,
        qi: usize,
        r: f64,
        k: usize,
        metric: Metric,
    ) -> (usize, u64, u64) {
        let mut count = 0usize;
        let mut evals = 0u64;
        let mut visits = 0u64;
        self.visit(
            &self.root,
            &Query {
                coords: partition.point(qi),
                skip: Some(qi),
                core_only: false,
                pred: NeighborPredicate::with_metric(metric, r),
                cap: k,
            },
            &mut count,
            &mut evals,
            &mut visits,
        );
        (count, evals, visits)
    }

    /// Recursive range-count with early termination at `query.cap`.
    ///
    /// The splitting-plane prune `|q[dim] − split| > r` is valid for
    /// every `Lp` metric: a single-coordinate difference lower-bounds the
    /// distance.
    fn visit(
        &self,
        node: &Node,
        query: &Query<'_>,
        count: &mut usize,
        evals: &mut u64,
        visits: &mut u64,
    ) {
        if *count >= query.cap {
            return;
        }
        *visits += 1;
        match node {
            Node::Leaf {
                core,
                core_coords,
                support,
                support_coords,
            } => {
                let dim = query.coords.len();
                // The query point itself is always a core point, so only
                // the core tile needs the self-exclusion check.
                let skip = query
                    .skip
                    .and_then(|s| core.iter().position(|&x| x == s as u32));
                let (found, scanned) = count_tile_excluding(
                    &query.pred,
                    query.coords,
                    core_coords,
                    dim,
                    skip,
                    query.cap - *count,
                );
                *evals += scanned;
                *count += found;
                if !query.core_only && *count < query.cap && !support.is_empty() {
                    let (found, scanned) = count_tile_excluding(
                        &query.pred,
                        query.coords,
                        support_coords,
                        dim,
                        None,
                        query.cap - *count,
                    );
                    *evals += scanned;
                    *count += found;
                }
            }
            Node::Inner {
                split_dim,
                split_val,
                left,
                right,
            } => {
                let delta = query.coords[*split_dim] - split_val;
                // Visit the side containing q first for faster termination.
                let (near, far) = if delta < 0.0 {
                    (left, right)
                } else {
                    (right, left)
                };
                self.visit(near, query, count, evals, visits);
                if *count < query.cap && delta.abs() <= query.pred.r() {
                    self.visit(far, query, count, evals, visits);
                }
            }
        }
    }

    /// Builds a leaf: the unified indices are sorted ascending and split
    /// into core and support sub-tiles (core indices come first in the
    /// unified order), with coordinates gathered contiguously per side.
    fn make_leaf(partition: &Partition, idx: &[u32]) -> Node {
        let dim = partition.dim();
        let total_core = partition.core().len();
        let mut points = idx.to_vec();
        points.sort_unstable();
        let n_core = points.partition_point(|&j| (j as usize) < total_core);
        let core: Vec<u32> = points[..n_core].to_vec();
        let mut core_coords = Vec::with_capacity(n_core * dim);
        for &j in &core {
            core_coords.extend_from_slice(partition.point(j as usize));
        }
        let support: Vec<u32> = points[n_core..]
            .iter()
            .map(|&j| j - total_core as u32)
            .collect();
        let mut support_coords = Vec::with_capacity(support.len() * dim);
        for &j in &support {
            support_coords.extend_from_slice(partition.support().point(j as usize));
        }
        Node::Leaf {
            core,
            core_coords,
            support,
            support_coords,
        }
    }

    fn build_node(
        partition: &Partition,
        idx: &mut [u32],
        leaf_size: usize,
        depth: usize,
        ops: &mut u64,
    ) -> Node {
        *ops += idx.len() as u64;
        if idx.len() <= leaf_size {
            return Self::make_leaf(partition, idx);
        }
        let dim = depth % partition.dim();
        let mid = idx.len() / 2;
        idx.select_nth_unstable_by(mid, |&a, &b| {
            let va = partition.point(a as usize)[dim];
            let vb = partition.point(b as usize)[dim];
            va.partial_cmp(&vb).expect("finite coordinates")
        });
        let split_val = partition.point(idx[mid] as usize)[dim];
        let (left, right) = idx.split_at_mut(mid);
        // Degenerate guard: if all values are equal the median split can
        // produce an empty side repeatedly; fall back to a leaf.
        if left.is_empty() || right.is_empty() {
            let mut all = Vec::with_capacity(left.len() + right.len());
            all.extend_from_slice(left);
            all.extend_from_slice(right);
            return Self::make_leaf(partition, &all);
        }
        Node::Inner {
            split_dim: dim,
            split_val,
            left: Box::new(Self::build_node(partition, left, leaf_size, depth + 1, ops)),
            right: Box::new(Self::build_node(
                partition,
                right,
                leaf_size,
                depth + 1,
                ops,
            )),
        }
    }
}

/// One range-count request against a [`KdIndex`].
struct Query<'a> {
    /// Query coordinates.
    coords: &'a [f64],
    /// **Core** index of the query point itself (excluded from its own
    /// neighbor count), or `None` for external query points.
    skip: Option<usize>,
    /// Whether only core points count as neighbors.
    core_only: bool,
    /// The neighbor predicate, built once per query.
    pred: NeighborPredicate,
    /// Early-termination cap on the count.
    cap: usize,
}

impl Detector for IndexBased {
    fn name(&self) -> &'static str {
        "index-based"
    }

    fn detect(&self, partition: &Partition, params: OutlierParams) -> Detection {
        if partition.core().is_empty() {
            return Detection::default();
        }
        let index = KdIndex::build(partition, self.leaf_size);
        self.detect_with_index(partition, params, &index)
    }
}

impl IndexBased {
    /// The query phase of the detector: classifies every core point of
    /// `partition` against a prebuilt [`KdIndex`].
    ///
    /// `index` must have been built over the same partition; the outlier
    /// set is then exactly the one the one-shot [`Detector::detect`]
    /// returns.
    pub fn detect_with_index(
        &self,
        partition: &Partition,
        params: OutlierParams,
        index: &KdIndex,
    ) -> Detection {
        let n_core = partition.core().len();
        if n_core == 0 {
            return Detection::default();
        }
        let mut stats = DetectionStats {
            index_operations: index.build_ops,
            ..Default::default()
        };
        let mut outliers = Vec::new();
        for i in 0..n_core {
            let (count, evals, visits) =
                index.count_neighbors(partition, i, params.r, params.k, params.metric);
            stats.distance_evaluations += evals;
            stats.node_visits += visits;
            if count < params.k {
                outliers.push(partition.core_id(i));
            } else {
                stats.early_terminations += 1;
            }
        }
        outliers.sort_unstable();
        Detection { outliers, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::Reference;
    use dod_core::PointSet;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn params(r: f64, k: usize) -> OutlierParams {
        OutlierParams::new(r, k).unwrap()
    }

    fn random_partition(seed: u64, n_core: usize, n_support: usize, extent: f64) -> Partition {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut core = PointSet::new(2).unwrap();
        for _ in 0..n_core {
            core.push(&[rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)])
                .unwrap();
        }
        let mut support = PointSet::new(2).unwrap();
        for _ in 0..n_support {
            support
                .push(&[rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)])
                .unwrap();
        }
        let ids = (0..n_core as u64).collect();
        Partition::new(core, ids, support).unwrap()
    }

    #[test]
    fn matches_reference_on_random_data() {
        for seed in 0..10 {
            let p = random_partition(seed, 140, 35, 10.0);
            let prm = params(1.0, 4);
            let ib = IndexBased::default().detect(&p, prm);
            let rf = Reference.detect(&p, prm);
            assert_eq!(ib.outliers, rf.outliers, "seed {seed}");
        }
    }

    #[test]
    fn duplicate_heavy_data_is_exact() {
        // All points identical: the degenerate-split guard must fire.
        let pts: Vec<(f64, f64)> = vec![(1.0, 1.0); 100];
        let p = Partition::standalone(PointSet::from_xy(&pts));
        let det = IndexBased::default().detect(&p, params(0.5, 4));
        assert!(det.outliers.is_empty());
    }

    #[test]
    fn tiny_leaf_size_is_exact() {
        let p = random_partition(5, 100, 20, 6.0);
        let prm = params(0.8, 3);
        let ib = IndexBased::new(1).detect(&p, prm);
        let rf = Reference.detect(&p, prm);
        assert_eq!(ib.outliers, rf.outliers);
    }

    #[test]
    fn pruning_reduces_evaluations() {
        let p = random_partition(11, 3000, 0, 20.0);
        let prm = params(0.5, 4);
        let ib = IndexBased::default().detect(&p, prm);
        let rf = Reference.detect(&p, prm);
        assert_eq!(ib.outliers, rf.outliers);
        assert!(ib.stats.distance_evaluations < rf.stats.distance_evaluations / 2);
    }

    #[test]
    fn empty_partition() {
        let det = IndexBased::default().detect(
            &Partition::standalone(PointSet::new(2).unwrap()),
            params(1.0, 1),
        );
        assert!(det.outliers.is_empty());
    }

    #[test]
    fn five_dimensional_exactness() {
        let mut rng = StdRng::seed_from_u64(77);
        let mut core = PointSet::new(5).unwrap();
        for _ in 0..150 {
            let p: Vec<f64> = (0..5).map(|_| rng.gen_range(0.0..4.0)).collect();
            core.push(&p).unwrap();
        }
        let p = Partition::standalone(core);
        let prm = params(1.5, 3);
        let ib = IndexBased::default().detect(&p, prm);
        let rf = Reference.detect(&p, prm);
        assert_eq!(ib.outliers, rf.outliers);
    }

    #[test]
    fn incremental_mutations_match_fresh_build() {
        let full = random_partition(42, 60, 20, 8.0);
        let prm = params(1.0, 4);

        // Start from a prefix of the partition…
        let mut part = Partition::new(
            full.core().gather(&(0..40u64).collect::<Vec<_>>()),
            (0..40u64).collect(),
            full.support().gather(&(0..10u64).collect::<Vec<_>>()),
        )
        .unwrap();
        let mut index = KdIndex::build(&part, 16);

        // …splice in the remaining points…
        for i in 40..60 {
            let p = full.core().point(i).to_vec();
            let ci = part.push_core(&p, i as u64).unwrap();
            index.insert_core(ci as u32, &p);
        }
        for i in 10..20 {
            let p = full.support().point(i).to_vec();
            let si = part.push_support(&p).unwrap();
            index.insert_support(si as u32, &p);
        }

        // …and remove a few, mirroring the swap-remove renumbering.
        for victim in [3usize, 17, 44, 0] {
            let p = part.core().point(victim).to_vec();
            let last = part.core().len() - 1;
            let moved = (victim < last).then(|| part.core().point(last).to_vec());
            part.swap_remove_core(victim);
            index.remove_core(victim as u32, &p);
            if let Some(mp) = moved {
                index.renumber_core(last as u32, victim as u32, &mp);
            }
        }
        for victim in [5usize, 0] {
            let p = part.support().point(victim).to_vec();
            let last = part.support().len() - 1;
            let moved = (victim < last).then(|| part.support().point(last).to_vec());
            part.swap_remove_support(victim);
            index.remove_support(victim as u32, &p);
            if let Some(mp) = moved {
                index.renumber_support(last as u32, victim as u32, &mp);
            }
        }

        let fresh = KdIndex::build(&part, 16);
        let det = IndexBased::default().detect_with_index(&part, prm, &index);
        let fresh_det = IndexBased::default().detect_with_index(&part, prm, &fresh);
        assert_eq!(det.outliers, fresh_det.outliers);
        for q in [[0.5, 0.5], [4.0, 4.0], [7.5, 7.5]] {
            assert_eq!(
                index.count_core_neighbors(&part, &q, prm, usize::MAX),
                fresh.count_core_neighbors(&part, &q, prm, usize::MAX),
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn equivalent_to_reference(
            seed in 0u64..1000,
            n_core in 0usize..70,
            n_support in 0usize..25,
            r in 0.2f64..3.0,
            k in 1usize..6,
            leaf in 1usize..32,
        ) {
            let p = random_partition(seed, n_core, n_support, 8.0);
            let prm = params(r, k);
            let ib = IndexBased::new(leaf).detect(&p, prm);
            let rf = Reference.detect(&p, prm);
            prop_assert_eq!(ib.outliers, rf.outliers);
        }
    }
}

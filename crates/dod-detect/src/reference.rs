//! The exact brute-force oracle.
//!
//! `Reference` counts, for every core point, its neighbors among all core
//! and support points with a full O(n·m) scan (early-terminated at `k`).
//! It exists so every other detector — and the whole distributed pipeline —
//! can be property-tested for exactness against it.
//!
//! The scan runs on the kernel layer: a point's candidates in unified
//! core-then-support order are exactly three contiguous columnar tiles
//! (core before the point, core after it, support), so no per-candidate
//! indexing happens at all. Scan order, early-exit positions, and work
//! counters are identical to a one-pair-at-a-time loop.
//!
//! Core points are processed in groups of `QUERY_GROUP` (8) so the tiles
//! shared by the whole group — the core prefix before the group, the
//! core suffix after it, and the support set — are each loaded once per
//! group through the kernel layer's query-blocked entry point instead of
//! once per point. Splitting a tile never changes results: a tile scan's
//! count and `scanned` are exactly the scalar loop's, so scanning
//! `[0, i)` equals scanning `[0, g0)` then `[g0, i)` with the remaining
//! need. Only the within-group boundary slivers stay single-query.

use crate::detector::{Detection, DetectionStats, Detector};
use crate::partition::Partition;
use dod_core::OutlierParams;

/// Brute-force exact detector (correctness oracle).
#[derive(Debug, Clone, Copy, Default)]
pub struct Reference;

/// Core points scored per tile pass: the shared prefix/suffix/support
/// tiles are loaded once per group of this many queries.
const QUERY_GROUP: usize = 8;

impl Detector for Reference {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn detect(&self, partition: &Partition, params: OutlierParams) -> Detection {
        let n = partition.core().len();
        let dim = partition.dim();
        let mut outliers = Vec::new();
        let mut evals = 0u64;
        let pred = params.predicate();
        let core_flat = partition.core().as_flat();
        let support_flat = partition.support().as_flat();
        let mut g0 = 0usize;
        while g0 < n {
            let g1 = usize::min(g0 + QUERY_GROUP, n);
            let queries = &core_flat[g0 * dim..g1 * dim];
            let mut neighbors = vec![0usize; g1 - g0];

            // Each point's candidate sequence — core before it, core
            // after it, support; a point is not its own neighbor — is
            // decomposed so the tiles common to the whole group run
            // query-blocked. Stage 1: the core prefix before the group.
            let scan_shared = |tile: &[f64], neighbors: &mut [usize], evals: &mut u64| {
                let needs: Vec<usize> = neighbors
                    .iter()
                    .map(|&nb| params.k.saturating_sub(nb))
                    .collect();
                for (j, out) in pred
                    .count_within_tile_multi(queries, tile, &needs)
                    .into_iter()
                    .enumerate()
                {
                    *evals += out.scanned as u64;
                    neighbors[j] += out.found;
                }
            };
            scan_shared(&core_flat[..g0 * dim], &mut neighbors, &mut evals);

            // Stage 2: the within-group slivers around each point.
            for (j, nb) in neighbors.iter_mut().enumerate() {
                let i = g0 + j;
                let p = &core_flat[i * dim..(i + 1) * dim];
                for tile in [
                    &core_flat[g0 * dim..i * dim],
                    &core_flat[(i + 1) * dim..g1 * dim],
                ] {
                    if *nb >= params.k {
                        break;
                    }
                    let out = pred.count_within_tile(p, tile, params.k - *nb);
                    evals += out.scanned as u64;
                    *nb += out.found;
                }
            }

            // Stages 3 and 4: the core suffix after the group, then the
            // support set.
            scan_shared(&core_flat[g1 * dim..], &mut neighbors, &mut evals);
            scan_shared(support_flat, &mut neighbors, &mut evals);

            for (j, &nb) in neighbors.iter().enumerate() {
                if nb < params.k {
                    outliers.push(partition.core_id(g0 + j));
                }
            }
            g0 = g1;
        }
        outliers.sort_unstable();
        Detection {
            outliers,
            stats: DetectionStats {
                distance_evaluations: evals,
                ..Default::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_core::PointSet;

    fn params(r: f64, k: usize) -> OutlierParams {
        OutlierParams::new(r, k).unwrap()
    }

    #[test]
    fn isolated_point_is_outlier() {
        // Three clustered points plus one far away; k=1 means a point
        // needs at least one neighbor.
        let pts = PointSet::from_xy(&[(0.0, 0.0), (0.1, 0.0), (0.0, 0.1), (100.0, 100.0)]);
        let det = Reference.detect(&Partition::standalone(pts), params(1.0, 1));
        assert_eq!(det.outliers, vec![3]);
    }

    #[test]
    fn all_inliers_in_tight_cluster() {
        let pts = PointSet::from_xy(&[(0.0, 0.0), (0.1, 0.0), (0.0, 0.1), (0.1, 0.1)]);
        let det = Reference.detect(&Partition::standalone(pts), params(1.0, 3));
        assert!(det.outliers.is_empty());
    }

    #[test]
    fn k_threshold_is_strict() {
        // Two points within r of each other: each has exactly 1 neighbor.
        let pts = PointSet::from_xy(&[(0.0, 0.0), (0.5, 0.0)]);
        // k=1: 1 neighbor >= 1 -> inlier.
        let det = Reference.detect(&Partition::standalone(pts.clone()), params(1.0, 1));
        assert!(det.outliers.is_empty());
        // k=2: 1 neighbor < 2 -> both outliers.
        let det = Reference.detect(&Partition::standalone(pts), params(1.0, 2));
        assert_eq!(det.outliers, vec![0, 1]);
    }

    #[test]
    fn support_points_rescue_core_points() {
        // Core point with no core neighbors, but a support neighbor.
        let core = PointSet::from_xy(&[(0.0, 0.0)]);
        let support = PointSet::from_xy(&[(0.5, 0.0)]);
        let p = Partition::new(core, vec![0], support).unwrap();
        let det = Reference.detect(&p, params(1.0, 1));
        assert!(det.outliers.is_empty());
    }

    #[test]
    fn support_points_are_never_reported() {
        // The support point itself is isolated but must not be reported.
        let core = PointSet::from_xy(&[(0.0, 0.0), (0.2, 0.0)]);
        let support = PointSet::from_xy(&[(50.0, 50.0)]);
        let p = Partition::new(core, vec![10, 11], support).unwrap();
        let det = Reference.detect(&p, params(1.0, 1));
        assert!(det.outliers.is_empty());
    }

    #[test]
    fn boundary_distance_counts_as_neighbor() {
        let pts = PointSet::from_xy(&[(0.0, 0.0), (1.0, 0.0)]);
        let det = Reference.detect(&Partition::standalone(pts), params(1.0, 1));
        assert!(det.outliers.is_empty());
    }

    #[test]
    fn duplicate_points_are_neighbors() {
        let pts = PointSet::from_xy(&[(3.0, 3.0), (3.0, 3.0)]);
        let det = Reference.detect(&Partition::standalone(pts), params(0.5, 1));
        assert!(det.outliers.is_empty());
    }

    #[test]
    fn empty_partition_yields_nothing() {
        let p = Partition::standalone(PointSet::new(2).unwrap());
        let det = Reference.detect(&p, params(1.0, 1));
        assert!(det.outliers.is_empty());
        assert_eq!(det.stats.distance_evaluations, 0);
    }

    #[test]
    fn outliers_are_global_ids_sorted() {
        let core = PointSet::from_xy(&[(100.0, 100.0), (0.0, 0.0), (-100.0, -100.0)]);
        let p = Partition::new(core, vec![9, 4, 7], PointSet::new(2).unwrap()).unwrap();
        let det = Reference.detect(&p, params(1.0, 1));
        assert_eq!(det.outliers, vec![4, 7, 9]);
    }
}

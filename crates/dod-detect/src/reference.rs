//! The exact brute-force oracle.
//!
//! `Reference` counts, for every core point, its neighbors among all core
//! and support points with a full O(n·m) scan (early-terminated at `k`).
//! It exists so every other detector — and the whole distributed pipeline —
//! can be property-tested for exactness against it.
//!
//! The scan runs on the kernel layer: a point's candidates in unified
//! core-then-support order are exactly three contiguous columnar tiles
//! (core before the point, core after it, support), so no per-candidate
//! indexing happens at all. Scan order, early-exit positions, and work
//! counters are identical to a one-pair-at-a-time loop.

use crate::detector::{Detection, DetectionStats, Detector};
use crate::partition::Partition;
use dod_core::OutlierParams;

/// Brute-force exact detector (correctness oracle).
#[derive(Debug, Clone, Copy, Default)]
pub struct Reference;

impl Detector for Reference {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn detect(&self, partition: &Partition, params: OutlierParams) -> Detection {
        let n = partition.core().len();
        let dim = partition.dim();
        let mut outliers = Vec::new();
        let mut evals = 0u64;
        let pred = params.predicate();
        let core_flat = partition.core().as_flat();
        let support_flat = partition.support().as_flat();
        for i in 0..n {
            let p = partition.core().point(i);
            let mut neighbors = 0usize;
            // The unified scan skipping the point itself is three
            // contiguous tiles; a point is not its own neighbor.
            for tile in [
                &core_flat[..i * dim],
                &core_flat[(i + 1) * dim..],
                support_flat,
            ] {
                if neighbors >= params.k {
                    break;
                }
                let out = pred.count_within_tile(p, tile, params.k - neighbors);
                evals += out.scanned as u64;
                neighbors += out.found;
            }
            if neighbors < params.k {
                outliers.push(partition.core_id(i));
            }
        }
        outliers.sort_unstable();
        Detection {
            outliers,
            stats: DetectionStats {
                distance_evaluations: evals,
                ..Default::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_core::PointSet;

    fn params(r: f64, k: usize) -> OutlierParams {
        OutlierParams::new(r, k).unwrap()
    }

    #[test]
    fn isolated_point_is_outlier() {
        // Three clustered points plus one far away; k=1 means a point
        // needs at least one neighbor.
        let pts = PointSet::from_xy(&[(0.0, 0.0), (0.1, 0.0), (0.0, 0.1), (100.0, 100.0)]);
        let det = Reference.detect(&Partition::standalone(pts), params(1.0, 1));
        assert_eq!(det.outliers, vec![3]);
    }

    #[test]
    fn all_inliers_in_tight_cluster() {
        let pts = PointSet::from_xy(&[(0.0, 0.0), (0.1, 0.0), (0.0, 0.1), (0.1, 0.1)]);
        let det = Reference.detect(&Partition::standalone(pts), params(1.0, 3));
        assert!(det.outliers.is_empty());
    }

    #[test]
    fn k_threshold_is_strict() {
        // Two points within r of each other: each has exactly 1 neighbor.
        let pts = PointSet::from_xy(&[(0.0, 0.0), (0.5, 0.0)]);
        // k=1: 1 neighbor >= 1 -> inlier.
        let det = Reference.detect(&Partition::standalone(pts.clone()), params(1.0, 1));
        assert!(det.outliers.is_empty());
        // k=2: 1 neighbor < 2 -> both outliers.
        let det = Reference.detect(&Partition::standalone(pts), params(1.0, 2));
        assert_eq!(det.outliers, vec![0, 1]);
    }

    #[test]
    fn support_points_rescue_core_points() {
        // Core point with no core neighbors, but a support neighbor.
        let core = PointSet::from_xy(&[(0.0, 0.0)]);
        let support = PointSet::from_xy(&[(0.5, 0.0)]);
        let p = Partition::new(core, vec![0], support).unwrap();
        let det = Reference.detect(&p, params(1.0, 1));
        assert!(det.outliers.is_empty());
    }

    #[test]
    fn support_points_are_never_reported() {
        // The support point itself is isolated but must not be reported.
        let core = PointSet::from_xy(&[(0.0, 0.0), (0.2, 0.0)]);
        let support = PointSet::from_xy(&[(50.0, 50.0)]);
        let p = Partition::new(core, vec![10, 11], support).unwrap();
        let det = Reference.detect(&p, params(1.0, 1));
        assert!(det.outliers.is_empty());
    }

    #[test]
    fn boundary_distance_counts_as_neighbor() {
        let pts = PointSet::from_xy(&[(0.0, 0.0), (1.0, 0.0)]);
        let det = Reference.detect(&Partition::standalone(pts), params(1.0, 1));
        assert!(det.outliers.is_empty());
    }

    #[test]
    fn duplicate_points_are_neighbors() {
        let pts = PointSet::from_xy(&[(3.0, 3.0), (3.0, 3.0)]);
        let det = Reference.detect(&Partition::standalone(pts), params(0.5, 1));
        assert!(det.outliers.is_empty());
    }

    #[test]
    fn empty_partition_yields_nothing() {
        let p = Partition::standalone(PointSet::new(2).unwrap());
        let det = Reference.detect(&p, params(1.0, 1));
        assert!(det.outliers.is_empty());
        assert_eq!(det.stats.distance_evaluations, 0);
    }

    #[test]
    fn outliers_are_global_ids_sorted() {
        let core = PointSet::from_xy(&[(100.0, 100.0), (0.0, 0.0), (-100.0, -100.0)]);
        let p = Partition::new(core, vec![9, 4, 7], PointSet::new(2).unwrap()).unwrap();
        let det = Reference.detect(&p, params(1.0, 1));
        assert_eq!(det.outliers, vec![4, 7, 9]);
    }
}

//! Measured calibration profiles for the Section IV cost models.
//!
//! The PR 3 kernel layer accelerated distance predicates by 2.6–11.6x
//! while cell/index bookkeeping stayed scalar, so the legacy unit
//! constants in [`crate::cost`] overcharge pair ops relative to
//! structural ops. `bench calibrate` micro-measures both op classes per
//! `(metric, dimension)` through the same kernel entry points the
//! detectors use and writes the result as a [`CalibrationProfile`]
//! (checked in as `BENCH_calibration.json`). Loading a profile keeps
//! `pair = 1.0` and sets `structural` to the measured scalar/kernel
//! per-pair ratio; with no profile the model falls back to
//! [`CostWeights::UNIT`], bit-identical to the pre-calibration planner.
//!
//! The JSON schema (`dod-calibration/v1`) is flat and hand-parsed (the
//! workspace builds offline, without serde):
//!
//! ```json
//! {
//!   "schema": "dod-calibration/v1",
//!   "entries": [
//!     {"metric": "euclidean", "dim": 2,
//!      "kernel_pair_ns": 0.9, "scalar_pair_ns": 3.6,
//!      "pair": 1.0, "structural": 4.0}
//!   ]
//! }
//! ```

use crate::cost::CostWeights;
use dod_core::{KernelBackend, Metric};
use std::fmt;

/// Schema identifier accepted by [`CalibrationProfile::from_json`].
pub const CALIBRATION_SCHEMA: &str = "dod-calibration/v1";

/// A measured `(metric, dimension)` row of the profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileEntry {
    /// Distance metric the row was measured under.
    pub metric: Metric,
    /// Dimensionality the row was measured at.
    pub dim: usize,
    /// Kernel backend the row's `kernel_pair_ns` was measured through.
    /// Rows from pre-backend profiles default to
    /// [`KernelBackend::Scalar`].
    pub backend: KernelBackend,
    /// Measured nanoseconds per kernel-tile distance predicate.
    pub kernel_pair_ns: f64,
    /// Measured nanoseconds per scalar (pre-kernel) distance predicate.
    pub scalar_pair_ns: f64,
    /// Weights derived from the measurement (normally `pair = 1.0`,
    /// `structural = scalar_pair_ns / kernel_pair_ns`).
    pub weights: CostWeights,
}

impl ProfileEntry {
    /// Builds an entry from the two micro-measurements, deriving the
    /// weights. Structural ops are modeled as costing one *scalar* pair
    /// each (they were never kernelized), so in kernel-pair units the
    /// structural weight is the measured speedup ratio, floored at 1.0
    /// (a kernel slower than scalar would mean the measurement is noise).
    pub fn from_measurement(
        metric: Metric,
        dim: usize,
        backend: KernelBackend,
        kernel_pair_ns: f64,
        scalar_pair_ns: f64,
    ) -> Self {
        let ratio = if kernel_pair_ns > 0.0 && scalar_pair_ns.is_finite() {
            (scalar_pair_ns / kernel_pair_ns).max(1.0)
        } else {
            1.0
        };
        ProfileEntry {
            metric,
            dim,
            backend,
            kernel_pair_ns,
            scalar_pair_ns,
            weights: CostWeights {
                pair: 1.0,
                structural: ratio,
            },
        }
    }
}

/// Error raised when a profile fails to load or parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CalibrationError {
    msg: String,
}

impl CalibrationError {
    fn new(msg: impl Into<String>) -> Self {
        CalibrationError { msg: msg.into() }
    }
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "calibration profile: {}", self.msg)
    }
}

impl std::error::Error for CalibrationError {}

/// A set of measured [`ProfileEntry`] rows with nearest-dimension lookup.
///
/// Lookup order for `(metric, dim)`: exact match, else the entry for the
/// same metric with the nearest dimension (cost ratios drift slowly with
/// `d`), else [`CostWeights::UNIT`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CalibrationProfile {
    entries: Vec<ProfileEntry>,
}

impl CalibrationProfile {
    /// The empty profile: every lookup falls back to the legacy unit
    /// weights, making the planner bit-identical to pre-calibration.
    pub fn unit() -> Self {
        CalibrationProfile::default()
    }

    /// A profile over the given measured rows.
    pub fn new(entries: Vec<ProfileEntry>) -> Self {
        CalibrationProfile { entries }
    }

    /// Whether the profile has no measurements (pure unit fallback).
    pub fn is_unit(&self) -> bool {
        self.entries.is_empty()
    }

    /// The measured rows.
    pub fn entries(&self) -> &[ProfileEntry] {
        &self.entries
    }

    /// Whether at least one row was measured under `metric`.
    pub fn covers(&self, metric: Metric) -> bool {
        self.entries.iter().any(|e| e.metric == metric)
    }

    /// Weights for a `(metric, dim)` pair: exact row, else nearest
    /// dimension for the metric, else unit — preferring rows measured
    /// under this process's active kernel backend (see
    /// [`CalibrationProfile::resolve`]).
    pub fn weights_for(&self, metric: Metric, dim: usize) -> CostWeights {
        self.resolve(metric, dim).0
    }

    /// Weights for `(metric, dim)` plus the backend they were measured
    /// under, so plan reports can attribute their cost constants.
    ///
    /// Rows measured under [`dod_core::active_backend`] are preferred
    /// (even at a dimension gap) over rows from another backend, so one
    /// checked-in profile carrying both scalar and vector rows serves
    /// every build. Within a backend the usual exact-dim /
    /// nearest-dim order applies; with no matching metric at all the
    /// result is `(UNIT, Scalar)`.
    pub fn resolve(&self, metric: Metric, dim: usize) -> (CostWeights, KernelBackend) {
        let active = dod_core::active_backend();
        for pass in 0..2 {
            let mut best: Option<(usize, CostWeights, KernelBackend)> = None;
            for e in &self.entries {
                if e.metric != metric {
                    continue;
                }
                if pass == 0 && e.backend != active {
                    continue;
                }
                let gap = e.dim.abs_diff(dim);
                if gap == 0 {
                    return (e.weights, e.backend);
                }
                if best.is_none_or(|(g, _, _)| gap < g) {
                    best = Some((gap, e.weights, e.backend));
                }
            }
            if let Some((_, w, b)) = best {
                return (w, b);
            }
        }
        (CostWeights::UNIT, KernelBackend::Scalar)
    }

    /// Serializes to the `dod-calibration/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{CALIBRATION_SCHEMA}\",\n"));
        s.push_str(
            "  \"unit\": \"nanoseconds per distance predicate; weights in kernel-pair units\",\n",
        );
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"metric\": \"{}\", \"dim\": {}, \"backend\": \"{}\", \
                 \"kernel_pair_ns\": {:.4}, \"scalar_pair_ns\": {:.4}, \"pair\": {:.4}, \
                 \"structural\": {:.4}}}{}\n",
                e.metric.name(),
                e.dim,
                e.backend.name(),
                e.kernel_pair_ns,
                e.scalar_pair_ns,
                e.weights.pair,
                e.weights.structural,
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a `dod-calibration/v1` JSON document.
    ///
    /// # Errors
    /// Returns an error on malformed JSON, a wrong/missing schema tag, an
    /// unknown metric name, or non-finite/non-positive weights.
    pub fn from_json(text: &str) -> Result<Self, CalibrationError> {
        let value = parse::document(text)?;
        let obj = value
            .as_object()
            .ok_or_else(|| CalibrationError::new("top level must be an object"))?;
        match obj.get("schema").and_then(Value::as_str) {
            Some(s) if s == CALIBRATION_SCHEMA => {}
            Some(s) => {
                return Err(CalibrationError::new(format!(
                    "unsupported schema {s:?} (expected {CALIBRATION_SCHEMA:?})"
                )))
            }
            None => return Err(CalibrationError::new("missing \"schema\" tag")),
        }
        let rows = obj
            .get("entries")
            .and_then(Value::as_array)
            .ok_or_else(|| CalibrationError::new("missing \"entries\" array"))?;
        let mut entries = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let row = row
                .as_object()
                .ok_or_else(|| CalibrationError::new(format!("entry {i} is not an object")))?;
            let field_num = |name: &str| -> Result<f64, CalibrationError> {
                row.get(name).and_then(Value::as_f64).ok_or_else(|| {
                    CalibrationError::new(format!("entry {i}: missing number {name:?}"))
                })
            };
            let metric_name = row
                .get("metric")
                .and_then(Value::as_str)
                .ok_or_else(|| CalibrationError::new(format!("entry {i}: missing \"metric\"")))?;
            let metric = metric_from_name(metric_name).ok_or_else(|| {
                CalibrationError::new(format!("entry {i}: unknown metric {metric_name:?}"))
            })?;
            let dim = field_num("dim")? as usize;
            if dim == 0 {
                return Err(CalibrationError::new(format!(
                    "entry {i}: dim must be >= 1"
                )));
            }
            let backend = match row.get("backend").and_then(Value::as_str) {
                None => KernelBackend::Scalar,
                Some(name) => backend_from_name(name).ok_or_else(|| {
                    CalibrationError::new(format!("entry {i}: unknown backend {name:?}"))
                })?,
            };
            let weights = CostWeights {
                pair: field_num("pair")?,
                structural: field_num("structural")?,
            };
            if !(weights.pair.is_finite()
                && weights.structural.is_finite()
                && weights.pair > 0.0
                && weights.structural > 0.0)
            {
                return Err(CalibrationError::new(format!(
                    "entry {i}: weights must be finite and positive, got {weights:?}"
                )));
            }
            entries.push(ProfileEntry {
                metric,
                dim,
                backend,
                kernel_pair_ns: field_num("kernel_pair_ns")?,
                scalar_pair_ns: field_num("scalar_pair_ns")?,
                weights,
            });
        }
        Ok(CalibrationProfile { entries })
    }

    /// Reads and parses a profile file.
    ///
    /// # Errors
    /// Returns an error if the file cannot be read or does not parse.
    pub fn load(path: &str) -> Result<Self, CalibrationError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CalibrationError::new(format!("read {path}: {e}")))?;
        Self::from_json(&text)
    }
}

/// Inverse of [`KernelBackend::name`].
pub fn backend_from_name(name: &str) -> Option<KernelBackend> {
    match name {
        "scalar" => Some(KernelBackend::Scalar),
        "avx2" => Some(KernelBackend::Avx2),
        "neon" => Some(KernelBackend::Neon),
        _ => None,
    }
}

/// Inverse of [`Metric::name`].
pub fn metric_from_name(name: &str) -> Option<Metric> {
    match name {
        "euclidean" => Some(Metric::Euclidean),
        "manhattan" => Some(Metric::Manhattan),
        "chebyshev" => Some(Metric::Chebyshev),
        _ => None,
    }
}

use parse::Value;

/// Minimal recursive-descent JSON reader — just enough for the flat
/// `dod-calibration/v1` documents (no unicode escapes, no exotic
/// numbers). The workspace is intentionally serde-free.
mod parse {
    use super::CalibrationError;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }
        pub fn as_object(&self) -> Option<ObjView<'_>> {
            match self {
                Value::Obj(pairs) => Some(ObjView { pairs }),
                _ => None,
            }
        }
    }

    /// Borrowed view over an object's pairs with by-key lookup.
    #[derive(Clone, Copy)]
    pub struct ObjView<'a> {
        pairs: &'a [(String, Value)],
    }

    impl<'a> ObjView<'a> {
        pub fn get(&self, key: &str) -> Option<&'a Value> {
            self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }
    }

    pub fn document(text: &str) -> Result<Value, CalibrationError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters"));
        }
        Ok(value)
    }

    fn err(pos: usize, msg: &str) -> CalibrationError {
        CalibrationError::new(format!("json error at byte {pos}: {msg}"))
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), CalibrationError> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == ch {
            *pos += 1;
            Ok(())
        } else {
            Err(err(*pos, &format!("expected {:?}", ch as char)))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, CalibrationError> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Value::Null),
            Some(_) => parse_number(b, pos),
            None => Err(err(*pos, "unexpected end of input")),
        }
    }

    fn parse_lit(
        b: &[u8],
        pos: &mut usize,
        lit: &str,
        value: Value,
    ) -> Result<Value, CalibrationError> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(value)
        } else {
            Err(err(*pos, "invalid literal"))
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, CalibrationError> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| err(start, "invalid number"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, CalibrationError> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        while *pos < b.len() {
            match b[*pos] {
                b'"' => {
                    *pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *pos += 1;
                    let esc = *b.get(*pos).ok_or_else(|| err(*pos, "bad escape"))?;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        _ => return Err(err(*pos, "unsupported escape")),
                    });
                    *pos += 1;
                }
                c if c < 0x80 => {
                    out.push(c as char);
                    *pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let s =
                        std::str::from_utf8(&b[*pos..]).map_err(|_| err(*pos, "invalid utf-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    *pos += ch.len_utf8();
                }
            }
        }
        Err(err(*pos, "unterminated string"))
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, CalibrationError> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(err(*pos, "expected ',' or ']'")),
            }
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, CalibrationError> {
        expect(b, pos, b'{')?;
        let mut pairs = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            expect(b, pos, b':')?;
            let value = parse_value(b, pos)?;
            pairs.push((key, value));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(err(*pos, "expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> CalibrationProfile {
        CalibrationProfile::new(vec![
            ProfileEntry::from_measurement(Metric::Euclidean, 2, KernelBackend::Scalar, 1.0, 4.0),
            ProfileEntry::from_measurement(Metric::Euclidean, 4, KernelBackend::Scalar, 1.0, 6.0),
            ProfileEntry::from_measurement(Metric::Manhattan, 3, KernelBackend::Scalar, 2.0, 5.0),
        ])
    }

    #[test]
    fn lookup_prefers_exact_then_nearest_then_unit() {
        let p = sample_profile();
        assert_eq!(p.weights_for(Metric::Euclidean, 2).structural, 4.0);
        // dim 3 is equidistant from 2 and 4: first (lowest-gap-first) wins.
        let near = p.weights_for(Metric::Euclidean, 3);
        assert!(near.structural == 4.0 || near.structural == 6.0);
        assert_eq!(p.weights_for(Metric::Euclidean, 9).structural, 6.0);
        assert_eq!(p.weights_for(Metric::Chebyshev, 2), CostWeights::UNIT);
        assert!(CalibrationProfile::unit().is_unit());
    }

    #[test]
    fn json_round_trip_preserves_entries() {
        let p = sample_profile();
        let parsed = CalibrationProfile::from_json(&p.to_json()).unwrap();
        assert_eq!(parsed.entries().len(), 3);
        for (a, b) in p.entries().iter().zip(parsed.entries()) {
            assert_eq!(a.metric, b.metric);
            assert_eq!(a.dim, b.dim);
            assert!((a.weights.structural - b.weights.structural).abs() < 1e-3);
        }
        assert!(parsed.covers(Metric::Euclidean));
        assert!(parsed.covers(Metric::Manhattan));
        assert!(!parsed.covers(Metric::Chebyshev));
    }

    #[test]
    fn parser_rejects_bad_documents() {
        assert!(CalibrationProfile::from_json("not json").is_err());
        assert!(
            CalibrationProfile::from_json("{\"schema\": \"other/v9\", \"entries\": []}").is_err()
        );
        assert!(CalibrationProfile::from_json("{\"entries\": []}").is_err());
        let bad_metric = format!(
            "{{\"schema\": \"{CALIBRATION_SCHEMA}\", \"entries\": [{{\"metric\": \"cosine\", \
             \"dim\": 2, \"kernel_pair_ns\": 1, \"scalar_pair_ns\": 2, \"pair\": 1, \
             \"structural\": 2}}]}}"
        );
        assert!(CalibrationProfile::from_json(&bad_metric).is_err());
        let bad_weight = format!(
            "{{\"schema\": \"{CALIBRATION_SCHEMA}\", \"entries\": [{{\"metric\": \"euclidean\", \
             \"dim\": 2, \"kernel_pair_ns\": 1, \"scalar_pair_ns\": 2, \"pair\": 0, \
             \"structural\": 2}}]}}"
        );
        assert!(CalibrationProfile::from_json(&bad_weight).is_err());
    }

    #[test]
    fn measurement_ratio_floors_at_one() {
        let e =
            ProfileEntry::from_measurement(Metric::Euclidean, 2, KernelBackend::Scalar, 5.0, 2.0);
        assert_eq!(e.weights.structural, 1.0);
        assert_eq!(e.weights.pair, 1.0);
    }
}

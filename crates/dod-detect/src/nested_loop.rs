//! The Nested-Loop detector (Section IV-A).
//!
//! For each core point `p`, candidates are examined in random order until
//! either `k` neighbors are found (`p` is an inlier) or every point has
//! been examined (`p` is an outlier). The expected number of trials for an
//! inlier is `k/μ` where `μ = A(p)/A(D)` is the hit probability — exactly
//! the quantity Lemma 4.1 models — so the algorithm is fast on dense data
//! and slow on sparse data.
//!
//! Randomization is implemented by drawing one global random permutation of
//! the candidate indices per `detect` call and starting each point's scan
//! at a per-point random offset into it. This preserves the uniform-trial
//! analysis while costing O(total) setup instead of O(n·total).

use crate::detector::{Detection, DetectionStats, Detector};
use crate::partition::Partition;
use crate::scan::PermutedScan;
use dod_core::OutlierParams;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Randomized nested-loop detector.
#[derive(Debug, Clone, Copy)]
pub struct NestedLoop {
    seed: u64,
}

impl NestedLoop {
    /// Creates a detector with the given RNG seed (detection output is
    /// seed-independent; only the order of comparisons varies).
    pub fn new(seed: u64) -> Self {
        NestedLoop { seed }
    }
}

impl Default for NestedLoop {
    fn default() -> Self {
        NestedLoop::new(0xD0D_0001)
    }
}

impl Detector for NestedLoop {
    fn name(&self) -> &'static str {
        "nested-loop"
    }

    fn detect(&self, partition: &Partition, params: OutlierParams) -> Detection {
        let n = partition.core().len();
        let total = partition.total_len();
        let mut outliers = Vec::new();
        let mut evals = 0u64;

        if n == 0 {
            return Detection::default();
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order: Vec<u32> = (0..total as u32).collect();
        order.shuffle(&mut rng);

        // Gather the permutation into a contiguous columnar buffer once,
        // so every per-point scan feeds the tile kernels instead of doing
        // a bounds-checked random access per candidate. Scan order and
        // early-exit positions are identical to the scalar pair loop.
        let scan = PermutedScan::new(partition, &order);
        let pred = params.predicate();

        let mut early_terminations = 0u64;
        for i in 0..n {
            let p = partition.core().point(i);
            let start = rng.gen_range(0..total);
            let (found, scanned) = scan.count_cycle(&pred, p, start, i, params.k);
            evals += scanned;
            if found >= params.k {
                early_terminations += 1;
            } else {
                outliers.push(partition.core_id(i));
            }
        }
        outliers.sort_unstable();
        Detection {
            outliers,
            stats: DetectionStats {
                distance_evaluations: evals,
                early_terminations,
                ..Default::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::Reference;
    use dod_core::PointSet;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn params(r: f64, k: usize) -> OutlierParams {
        OutlierParams::new(r, k).unwrap()
    }

    fn random_partition(seed: u64, n_core: usize, n_support: usize, extent: f64) -> Partition {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut core = PointSet::new(2).unwrap();
        for _ in 0..n_core {
            core.push(&[rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)])
                .unwrap();
        }
        let mut support = PointSet::new(2).unwrap();
        for _ in 0..n_support {
            support
                .push(&[rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)])
                .unwrap();
        }
        let ids = (0..n_core as u64).collect();
        Partition::new(core, ids, support).unwrap()
    }

    #[test]
    fn matches_reference_on_random_data() {
        for seed in 0..10 {
            let p = random_partition(seed, 120, 30, 10.0);
            let prm = params(1.0, 4);
            let nl = NestedLoop::default().detect(&p, prm);
            let rf = Reference.detect(&p, prm);
            assert_eq!(nl.outliers, rf.outliers, "seed {seed}");
        }
    }

    #[test]
    fn output_is_seed_independent() {
        let p = random_partition(7, 200, 0, 5.0);
        let prm = params(0.5, 3);
        let a = NestedLoop::new(1).detect(&p, prm);
        let b = NestedLoop::new(999).detect(&p, prm);
        assert_eq!(a.outliers, b.outliers);
    }

    #[test]
    fn isolated_point_found() {
        let pts = PointSet::from_xy(&[(0.0, 0.0), (0.1, 0.1), (0.2, 0.0), (50.0, 50.0)]);
        let det = NestedLoop::default().detect(&Partition::standalone(pts), params(1.0, 2));
        assert_eq!(det.outliers, vec![3]);
    }

    #[test]
    fn empty_partition() {
        let det = NestedLoop::default().detect(
            &Partition::standalone(PointSet::new(2).unwrap()),
            params(1.0, 1),
        );
        assert!(det.outliers.is_empty());
    }

    #[test]
    fn dense_data_needs_fewer_evaluations_than_sparse() {
        // The Figure 4 observation: same cardinality, 4x density ratio ->
        // markedly less work on the dense set.
        let n = 2000;
        let dense = random_partition(3, n, 0, 50.0); // area 2500
        let sparse = random_partition(4, n, 0, 100.0); // area 10000
        let prm = params(2.0, 4);
        let d = NestedLoop::default().detect(&dense, prm);
        let s = NestedLoop::default().detect(&sparse, prm);
        assert!(
            s.stats.distance_evaluations > 2 * d.stats.distance_evaluations,
            "sparse {} vs dense {}",
            s.stats.distance_evaluations,
            d.stats.distance_evaluations
        );
    }

    #[test]
    fn support_points_count_as_neighbors_but_not_reported() {
        let core = PointSet::from_xy(&[(0.0, 0.0)]);
        let support = PointSet::from_xy(&[(0.3, 0.0), (0.0, 0.3)]);
        let p = Partition::new(core, vec![5], support).unwrap();
        let det = NestedLoop::default().detect(&p, params(1.0, 2));
        assert!(det.outliers.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn equivalent_to_reference(
            seed in 0u64..1000,
            n_core in 0usize..60,
            n_support in 0usize..20,
            r in 0.2f64..3.0,
            k in 1usize..6,
        ) {
            let p = random_partition(seed, n_core, n_support, 8.0);
            let prm = params(r, k);
            let nl = NestedLoop::default().detect(&p, prm);
            let rf = Reference.detect(&p, prm);
            prop_assert_eq!(nl.outliers, rf.outliers);
        }
    }
}

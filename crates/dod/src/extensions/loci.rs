//! Distributed LOCI outlier detection on the DOD framework — the second
//! mining task Section III-B names as adaptable ("density-based
//! clustering \[16\] and LOCI outlier detection \[22\]").
//!
//! LOCI (Papadimitriou et al., ICDE 2003), bounded-radius variant: for a
//! geometric ladder of radii `r ∈ {r_max, r_max/2, ...}` define
//!
//! * `n(p, αr)` — points within `αr` of `p` (counting `p` itself),
//! * `n̂(p, r)` — the average of `n(q, αr)` over all `q` within `r` of `p`,
//! * `MDEF(p, r) = 1 − n(p, αr) / n̂(p, r)`, and
//! * `σMDEF(p, r)` — the normalized standard deviation of `n(q, αr)`.
//!
//! `p` is flagged iff `MDEF > kσ · σMDEF` at some radius with at least
//! `n_min` sampling neighbors. A point deviating from the local density
//! of its own neighborhood is caught at the radius of that neighborhood —
//! multi-granularity, with no single global density threshold.
//!
//! # Distribution
//!
//! Every quantity above for a core point `p` depends only on points
//! within `(1 + α)·r_max` of `p`: the sampling neighbors `q` are within
//! `r_max`, and their counting neighbors within a further `α·r_max`.
//! Routing with a supporting radius of `(1 + α)·r_max` therefore makes
//! each partition self-sufficient (the Lemma 3.1 argument verbatim), and
//! the distributed result is bit-identical to a centralized run.

use crate::framework::{DodMapper, InputPoint, TaggedPoint};
use crate::pipeline::{DodConfig, DodError};
use dod_core::{GridSpec, Metric, PointId, PointSet};
use dod_partition::{sample_points, PartitionStrategy, PlanContext};
use mapreduce::{run_job, BlockStore, JobMetrics, Reducer};
use std::sync::Arc;

/// LOCI parameters.
#[derive(Debug, Clone, Copy)]
pub struct LociConfig {
    /// Largest sampling radius.
    pub r_max: f64,
    /// Counting-to-sampling radius ratio (the paper uses 0.5).
    pub alpha: f64,
    /// Number of radius levels (`r_max, r_max/2, ..., r_max/2^(levels-1)`).
    pub levels: usize,
    /// Minimum sampling-neighborhood size for a radius to be considered
    /// (the paper recommends 20; lower it for small data).
    pub n_min: usize,
    /// Deviation threshold multiplier `kσ` (the paper uses 3).
    pub k_sigma: f64,
    /// Distance metric.
    pub metric: Metric,
}

impl LociConfig {
    /// Paper-default parameters for the given `r_max`.
    pub fn new(r_max: f64) -> Self {
        LociConfig {
            r_max,
            alpha: 0.5,
            levels: 4,
            n_min: 20,
            k_sigma: 3.0,
            metric: Metric::Euclidean,
        }
    }

    /// The supporting radius that makes partitions self-sufficient.
    pub fn support_radius(&self) -> f64 {
        (1.0 + self.alpha) * self.r_max
    }

    fn radii(&self) -> Vec<f64> {
        (0..self.levels.max(1))
            .map(|j| self.r_max / 2f64.powi(j as i32))
            .collect()
    }
}

/// Grid-accelerated range counting within one partition.
struct RangeCounter<'a> {
    points: &'a PointSet,
    grid: GridSpec,
    buckets: std::collections::HashMap<usize, Vec<u32>>,
    radius_cells: usize,
    metric: Metric,
}

impl<'a> RangeCounter<'a> {
    fn build(points: &'a PointSet, r: f64, metric: Metric) -> Self {
        let bounds = points.bounding_rect().expect("non-empty");
        let cells: Vec<usize> = (0..points.dim())
            .map(|i| {
                let extent = bounds.extent(i);
                if extent == 0.0 {
                    1
                } else {
                    ((extent / r).ceil() as usize).clamp(1, 256)
                }
            })
            .collect();
        let grid = GridSpec::new(bounds, cells).expect("valid grid");
        let mut buckets: std::collections::HashMap<usize, Vec<u32>> = Default::default();
        for i in 0..points.len() {
            buckets
                .entry(grid.cell_of(points.point(i)))
                .or_default()
                .push(i as u32);
        }
        let radius_cells = (0..points.dim())
            .map(|i| {
                let w = grid.width(i);
                if w == 0.0 {
                    0
                } else {
                    (r / w).ceil() as usize
                }
            })
            .max()
            .unwrap_or(1);
        RangeCounter {
            points,
            grid,
            buckets,
            radius_cells,
            metric,
        }
    }

    /// Indices within `r` of point `i`, **including `i` itself** (LOCI's
    /// counts are inclusive).
    fn neighbors_within(&self, i: usize, r: f64) -> Vec<u32> {
        let p = self.points.point(i);
        let cell = self.grid.cell_of(p);
        let mut out = Vec::new();
        for ncid in self.grid.neighborhood(cell, self.radius_cells, true) {
            if let Some(b) = self.buckets.get(&ncid) {
                for &j in b {
                    if self.metric.within(p, self.points.point(j as usize), r) {
                        out.push(j);
                    }
                }
            }
        }
        out
    }
}

/// Runs bounded LOCI over one materialized point set; returns the flag
/// per point (index order). Exactness of the distributed run is checked
/// against this same function run centrally.
pub fn loci_local(points: &PointSet, cfg: &LociConfig) -> Vec<bool> {
    let n = points.len();
    let mut flagged = vec![false; n];
    if n == 0 {
        return flagged;
    }
    for r in cfg.radii() {
        let alpha_r = cfg.alpha * r;
        // Counting neighborhoods n(·, αr) for every point, then sampling
        // statistics over N(·, r).
        let counter_small = RangeCounter::build(points, alpha_r, cfg.metric);
        let counts: Vec<f64> = (0..n)
            .map(|i| counter_small.neighbors_within(i, alpha_r).len() as f64)
            .collect();
        let counter_big = RangeCounter::build(points, r, cfg.metric);
        for i in 0..n {
            if flagged[i] {
                continue;
            }
            let sampling = counter_big.neighbors_within(i, r);
            if sampling.len() < cfg.n_min {
                continue;
            }
            let m = sampling.len() as f64;
            let mean = sampling.iter().map(|&q| counts[q as usize]).sum::<f64>() / m;
            if mean <= 0.0 {
                continue;
            }
            let var = sampling
                .iter()
                .map(|&q| {
                    let d = counts[q as usize] - mean;
                    d * d
                })
                .sum::<f64>()
                / m;
            let mdef = 1.0 - counts[i] / mean;
            let sigma_mdef = var.sqrt() / mean;
            if mdef > cfg.k_sigma * sigma_mdef {
                flagged[i] = true;
            }
        }
    }
    flagged
}

/// Reducer of the distributed LOCI job: local LOCI over core + support,
/// reporting flags for core points only.
pub struct LociReducer {
    cfg: LociConfig,
    dim: usize,
}

impl LociReducer {
    /// Creates the reducer.
    pub fn new(cfg: LociConfig, dim: usize) -> Self {
        LociReducer { cfg, dim }
    }
}

impl Reducer for LociReducer {
    type K = u32;
    type V = TaggedPoint;
    type Out = PointId;

    fn reduce(&self, _key: &u32, values: Vec<TaggedPoint>, emit: &mut dyn FnMut(PointId)) {
        let mut points = PointSet::new(self.dim).expect("dim >= 1");
        for v in &values {
            points.push(&v.coords).expect("same dim");
        }
        let flags = loci_local(&points, &self.cfg);
        for (i, v) in values.iter().enumerate() {
            if !v.support && flags[i] {
                emit(v.id);
            }
        }
    }
}

/// Result of a distributed LOCI run.
#[derive(Debug)]
pub struct LociOutcome {
    /// Flagged point ids, ascending.
    pub outliers: Vec<PointId>,
    /// Job metrics.
    pub metrics: JobMetrics,
}

/// Runs distributed LOCI over `data` using `strategy` for partitioning
/// (`config` supplies the cluster/sampling knobs; `cfg` the LOCI
/// parameters).
///
/// # Errors
/// Returns [`DodError`] on job failure or inconsistent input.
pub fn loci(
    data: &PointSet,
    cfg: &LociConfig,
    config: &DodConfig,
    strategy: &dyn PartitionStrategy,
) -> Result<LociOutcome, DodError> {
    if data.is_empty() {
        return Ok(LociOutcome {
            outliers: Vec::new(),
            metrics: JobMetrics::default(),
        });
    }
    let domain = data.bounding_rect()?;
    let sample = sample_points(data, config.sample_rate, config.seed);
    let ctx = PlanContext::new(config.params, config.target_partitions, config.sample_rate);
    let plan = strategy.build_plan(&sample, &domain, &ctx);
    // The wider supporting radius is what makes LOCI exact per partition.
    let router = Arc::new(plan.router_with_metric(cfg.support_radius(), cfg.metric));

    let items: Vec<InputPoint> = (0..data.len())
        .map(|i| (i as PointId, data.point(i).to_vec()))
        .collect();
    let store = BlockStore::from_items(items, config.block_size, config.replication);
    let mapper = DodMapper::new(router);
    let reducer = LociReducer::new(*cfg, domain.dim());
    let partitioner = |k: &u32, n: usize| (*k as usize) % n;
    let out = run_job(
        &config.cluster,
        &store,
        &mapper,
        &reducer,
        &partitioner,
        config.num_reducers,
    )?;
    let mut outliers = out.outputs;
    outliers.sort_unstable();
    Ok(LociOutcome {
        outliers,
        metrics: out.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_core::OutlierParams;
    use dod_partition::{Dmt, UniSpace};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dod_config(r: f64) -> DodConfig {
        DodConfig::builder(OutlierParams::new(r, 1).unwrap())
            .sample_rate(1.0)
            .block_size(128)
            .num_reducers(4)
            .target_partitions(9)
            .build()
            .unwrap()
    }

    fn uniform_with_planted(seed: u64, n: usize) -> (PointSet, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = PointSet::new(2).unwrap();
        for _ in 0..n {
            data.push(&[rng.gen_range(0.0..20.0), rng.gen_range(0.0..20.0)])
                .unwrap();
        }
        // A tight micro-cluster: locally FAR denser than its surroundings
        // — the pattern LOCI exists to catch.
        let mut planted = Vec::new();
        for i in 0..15 {
            let id = data
                .push(&[10.0 + (i % 4) as f64 * 0.01, 10.0 + (i / 4) as f64 * 0.01])
                .unwrap();
            planted.push(id);
        }
        (data, planted)
    }

    #[test]
    fn local_loci_flags_nothing_on_uniform_data() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut data = PointSet::new(2).unwrap();
        for _ in 0..800 {
            data.push(&[rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)])
                .unwrap();
        }
        let cfg = LociConfig {
            n_min: 10,
            ..LociConfig::new(2.0)
        };
        let flags = loci_local(&data, &cfg);
        let flagged = flags.iter().filter(|&&f| f).count();
        // 3-sigma threshold: a small false-positive rate is expected, but
        // uniform data must not light up wholesale.
        assert!(
            flagged < data.len() / 20,
            "{flagged} of {} flagged",
            data.len()
        );
    }

    #[test]
    fn neighbors_of_micro_cluster_deviate() {
        // Points NEXT TO a dense micro-cluster have n(p, αr) typical of
        // the background but sampling neighborhoods dominated by the
        // cluster's counts — high MDEF. The cluster members themselves
        // are the high-count points. Either way LOCI must flag something
        // around the anomaly while uniform regions stay quiet.
        let (data, _) = uniform_with_planted(4, 900);
        let cfg = LociConfig {
            n_min: 10,
            ..LociConfig::new(2.0)
        };
        let flags = loci_local(&data, &cfg);
        let near_anomaly = (0..data.len()).filter(|&i| {
            flags[i] && dod_core::Metric::Euclidean.dist(data.point(i), &[10.0, 10.0]) < 4.0
        });
        assert!(
            near_anomaly.count() > 0,
            "no flags near the planted micro-cluster"
        );
    }

    #[test]
    fn distributed_matches_centralized_exactly() {
        let (data, _) = uniform_with_planted(5, 700);
        let cfg = LociConfig {
            n_min: 10,
            ..LociConfig::new(2.0)
        };
        let expected: Vec<u64> = loci_local(&data, &cfg)
            .into_iter()
            .enumerate()
            .filter(|(_, f)| *f)
            .map(|(i, _)| i as u64)
            .collect();
        for strategy in [&UniSpace as &dyn PartitionStrategy, &Dmt::default()] {
            let out = loci(&data, &cfg, &dod_config(2.0), strategy).unwrap();
            assert_eq!(out.outliers, expected);
        }
    }

    #[test]
    fn empty_input() {
        let cfg = LociConfig::new(1.0);
        let out = loci(
            &PointSet::new(2).unwrap(),
            &cfg,
            &dod_config(1.0),
            &UniSpace,
        )
        .unwrap();
        assert!(out.outliers.is_empty());
    }

    #[test]
    fn support_radius_is_one_plus_alpha() {
        let cfg = LociConfig::new(2.0);
        assert_eq!(cfg.support_radius(), 3.0);
        assert_eq!(cfg.radii(), vec![2.0, 1.0, 0.5, 0.25]);
    }

    #[test]
    fn n_min_gates_small_neighborhoods() {
        // With n_min larger than the dataset nothing can be flagged.
        let (data, _) = uniform_with_planted(6, 100);
        let cfg = LociConfig {
            n_min: 10_000,
            ..LociConfig::new(2.0)
        };
        assert!(loci_local(&data, &cfg).iter().all(|&f| !f));
    }
}

//! Other analytics tasks on the DOD framework.
//!
//! Section III-B claims the single-pass supporting-area framework "can be
//! easily adapted to support other mining tasks". These modules
//! substantiate the claim:
//!
//! * [`similarity_join`] — exact distance self-join (all pairs within
//!   `r`), the workload of the paper's related-work comparison \[14\];
//! * [`dbscan`] — distributed density-based clustering (the MR-DBSCAN
//!   task of reference \[16\]): local DBSCAN per partition plus a global
//!   cluster-merge step;
//! * [`loci`] — distributed LOCI outlier detection (reference \[22\]),
//!   exact thanks to a widened `(1+α)·r_max` supporting radius.

pub mod dbscan;
pub mod loci;
pub mod similarity_join;

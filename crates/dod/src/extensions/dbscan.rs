//! Distributed density-based clustering (DBSCAN) on the DOD framework —
//! the MR-DBSCAN task of the paper's reference \[16\], included to
//! substantiate the framework-generality claim of Section III-B.
//!
//! DBSCAN(ε, minPts): a point is a **core point** iff it has at least
//! `minPts` neighbors within `ε` (neighbors exclude the point itself, to
//! stay consistent with this workspace's Definition 2.2 convention);
//! clusters are the connected components of core points under the
//! within-ε relation, plus the border points within ε of a core point.
//!
//! # Distribution
//!
//! Since ε-neighborhoods are exactly the supporting-area radius, every
//! partition can decide **authoritatively** whether each of its *core
//! (tag-0)* points is a DBSCAN core point, and can assign it a local
//! cluster. A point replicated as support may be mislabeled locally (its
//! neighborhood is not fully visible), so merging is driven only by
//! authoritative facts:
//!
//! * every partition emits, for each point it placed in a local cluster,
//!   the record `(point id, local cluster, authoritative?)`;
//! * the driver unions two local clusters iff they share a point whose
//!   authoritative record says *DBSCAN core* — a core point belonging to
//!   two clusters forces them to be one cluster;
//! * border points take their authoritative partition's assignment
//!   (border membership is ambiguous in DBSCAN; any within-ε core
//!   neighbor's cluster is acceptable, and we keep the local choice).
//!
//! The result matches centralized DBSCAN exactly on noise and on the
//! core-point partition structure (see the equivalence tests).

use crate::framework::{DodMapper, InputPoint, TaggedPoint};
use crate::pipeline::{DodConfig, DodError};
use dod_core::{GridSpec, PointId, PointSet};
use dod_partition::{sample_points, PartitionStrategy, PlanContext};
use mapreduce::{run_job, BlockStore, EstimateSize, JobMetrics, Reducer};
use std::collections::HashMap;
use std::sync::Arc;

/// Final label of a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Label {
    /// Not density-reachable from any core point.
    Noise,
    /// Member of the cluster with this global id.
    Cluster(u32),
}

/// One reducer-emitted labeling fact.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelRecord {
    /// Global point id.
    pub id: PointId,
    /// Local cluster: `(partition id, local cluster index)`; `None` for
    /// local noise.
    pub cluster: Option<(u32, u32)>,
    /// Whether this record comes from the point's core partition (then
    /// `is_dbscan_core` is exact).
    pub authoritative: bool,
    /// Whether the point is a DBSCAN core point (exact only when
    /// `authoritative`).
    pub is_dbscan_core: bool,
}

impl EstimateSize for LabelRecord {
    fn estimated_bytes(&self) -> usize {
        8 + 9 + 2
    }
}

/// Runs DBSCAN over the points of one partition (core + support).
/// Returns, per unified index: `(local cluster or None, is_core_point)`.
///
/// Grid-accelerated: ε-range queries scan only the neighboring cells.
pub fn dbscan_local(points: &PointSet, eps: f64, min_pts: usize) -> (Vec<Option<u32>>, Vec<bool>) {
    dbscan_local_metric(points, eps, min_pts, dod_core::Metric::Euclidean)
}

/// [`dbscan_local`] under an arbitrary metric.
pub fn dbscan_local_metric(
    points: &PointSet,
    eps: f64,
    min_pts: usize,
    metric: dod_core::Metric,
) -> (Vec<Option<u32>>, Vec<bool>) {
    let n = points.len();
    let mut cluster: Vec<Option<u32>> = vec![None; n];
    let mut is_core = vec![false; n];
    if n == 0 {
        return (cluster, is_core);
    }
    let bounds = points.bounding_rect().expect("non-empty");
    let cells: Vec<usize> = (0..points.dim())
        .map(|i| {
            let extent = bounds.extent(i);
            if extent == 0.0 {
                1
            } else {
                ((extent / eps).ceil() as usize).clamp(1, 512)
            }
        })
        .collect();
    let grid = GridSpec::new(bounds, cells).expect("valid grid");
    let mut buckets: HashMap<usize, Vec<u32>> = HashMap::new();
    for i in 0..n {
        buckets
            .entry(grid.cell_of(points.point(i)))
            .or_default()
            .push(i as u32);
    }
    let radius: usize = (0..points.dim())
        .map(|i| {
            let w = grid.width(i);
            if w == 0.0 {
                0
            } else {
                (eps / w).ceil() as usize
            }
        })
        .max()
        .unwrap_or(1);
    let neighbors_of = |i: usize| -> Vec<u32> {
        let cell = grid.cell_of(points.point(i));
        let mut out = Vec::new();
        for ncid in grid.neighborhood(cell, radius, true) {
            if let Some(b) = buckets.get(&ncid) {
                for &j in b {
                    if j as usize != i
                        && metric.within(points.point(i), points.point(j as usize), eps)
                    {
                        out.push(j);
                    }
                }
            }
        }
        out
    };

    // Mark core points.
    for (i, core) in is_core.iter_mut().enumerate().take(n) {
        if neighbors_of(i).len() >= min_pts {
            *core = true;
        }
    }
    // Expand clusters from core points (BFS over core connectivity).
    let mut next_cluster = 0u32;
    for i in 0..n {
        if !is_core[i] || cluster[i].is_some() {
            continue;
        }
        let cid = next_cluster;
        next_cluster += 1;
        cluster[i] = Some(cid);
        let mut queue = vec![i as u32];
        while let Some(cur) = queue.pop() {
            for j in neighbors_of(cur as usize) {
                let j = j as usize;
                if cluster[j].is_none() {
                    cluster[j] = Some(cid);
                    if is_core[j] {
                        queue.push(j as u32);
                    }
                }
            }
        }
    }
    (cluster, is_core)
}

/// Reducer of the clustering job: local DBSCAN plus labeling facts.
pub struct DbscanReducer {
    eps: f64,
    min_pts: usize,
    dim: usize,
    metric: dod_core::Metric,
}

impl DbscanReducer {
    /// Creates the reducer.
    pub fn new(eps: f64, min_pts: usize, dim: usize, metric: dod_core::Metric) -> Self {
        DbscanReducer {
            eps,
            min_pts,
            dim,
            metric,
        }
    }
}

impl Reducer for DbscanReducer {
    type K = u32;
    type V = TaggedPoint;
    type Out = LabelRecord;

    fn reduce(&self, key: &u32, values: Vec<TaggedPoint>, emit: &mut dyn FnMut(LabelRecord)) {
        let mut points = PointSet::new(self.dim).expect("dim >= 1");
        for v in &values {
            points.push(&v.coords).expect("same dim");
        }
        let (cluster, is_core) = dbscan_local_metric(&points, self.eps, self.min_pts, self.metric);
        for (i, v) in values.iter().enumerate() {
            let authoritative = !v.support;
            let local = cluster[i].map(|c| (*key, c));
            if local.is_none() && !authoritative {
                continue; // unlabeled support points carry no information
            }
            emit(LabelRecord {
                id: v.id,
                cluster: local,
                authoritative,
                is_dbscan_core: is_core[i],
            });
        }
    }
}

/// Result of a distributed DBSCAN run.
#[derive(Debug)]
pub struct DbscanOutcome {
    /// Label per point id (index = id).
    pub labels: Vec<Label>,
    /// Number of global clusters.
    pub num_clusters: usize,
    /// Job metrics.
    pub metrics: JobMetrics,
}

/// Union-find over local cluster labels.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }
    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
    }
}

/// Runs distributed DBSCAN(`eps = config.params.r`,
/// `min_pts = config.params.k`) over `data`.
///
/// # Errors
/// Returns [`DodError`] on job failure or inconsistent input.
pub fn dbscan(
    data: &PointSet,
    config: &DodConfig,
    strategy: &dyn PartitionStrategy,
) -> Result<DbscanOutcome, DodError> {
    if data.is_empty() {
        return Ok(DbscanOutcome {
            labels: Vec::new(),
            num_clusters: 0,
            metrics: JobMetrics::default(),
        });
    }
    let eps = config.params.r;
    let min_pts = config.params.k;
    let domain = data.bounding_rect()?;
    let sample = sample_points(data, config.sample_rate, config.seed);
    let ctx = PlanContext::new(config.params, config.target_partitions, config.sample_rate);
    let plan = strategy.build_plan(&sample, &domain, &ctx);
    let router = Arc::new(plan.router_with_metric(eps, config.params.metric));

    let items: Vec<InputPoint> = (0..data.len())
        .map(|i| (i as PointId, data.point(i).to_vec()))
        .collect();
    let store = BlockStore::from_items(items, config.block_size, config.replication);
    let mapper = DodMapper::new(router);
    let reducer = DbscanReducer::new(eps, min_pts, domain.dim(), config.params.metric);
    let partitioner = |k: &u32, n: usize| (*k as usize) % n;
    let out = run_job(
        &config.cluster,
        &store,
        &mapper,
        &reducer,
        &partitioner,
        config.num_reducers,
    )?;

    // ---- Global merge (driver side). ----
    // Intern local cluster labels.
    let mut label_ids: HashMap<(u32, u32), u32> = HashMap::new();
    for rec in &out.outputs {
        if let Some(local) = rec.cluster {
            let next = label_ids.len() as u32;
            label_ids.entry(local).or_insert(next);
        }
    }
    let mut uf = UnionFind::new(label_ids.len());
    // Group records by point.
    let mut by_point: HashMap<PointId, Vec<&LabelRecord>> = HashMap::new();
    for rec in &out.outputs {
        by_point.entry(rec.id).or_default().push(rec);
    }
    for recs in by_point.values() {
        // Local core-ness is never over-claimed (a partition sees a
        // subset of a support point's true neighborhood and the full
        // neighborhood of a core point), so *any* record marking the
        // point as a DBSCAN core point is exact — and a core point
        // belonging to several local clusters unions them all.
        let known_core = recs.iter().any(|r| r.is_dbscan_core);
        if !known_core {
            continue;
        }
        let mut first: Option<u32> = None;
        for r in recs.iter() {
            if let Some(local) = r.cluster {
                let lid = label_ids[&local];
                match first {
                    Some(f) => uf.union(f, lid),
                    None => first = Some(lid),
                }
            }
        }
    }

    // Compact global cluster ids.
    let mut global_of_root: HashMap<u32, u32> = HashMap::new();
    let mut labels = vec![Label::Noise; data.len()];
    // Deterministic assignment order: by point id, preferring the
    // authoritative record.
    let mut ids: Vec<PointId> = by_point.keys().copied().collect();
    ids.sort_unstable();
    for id in ids {
        let recs = &by_point[&id];
        // Any clustered record is valid (see the merge comment); a point
        // is noise only if no partition could cluster it. Prefer the
        // authoritative clustered record, then the smallest local label,
        // for determinism.
        let chosen = recs
            .iter()
            .filter(|r| r.cluster.is_some())
            .min_by_key(|r| (!r.authoritative, r.cluster));
        if let Some(local) = chosen.and_then(|r| r.cluster) {
            let root = uf.find(label_ids[&local]);
            let next = global_of_root.len() as u32;
            let gid = *global_of_root.entry(root).or_insert(next);
            labels[id as usize] = Label::Cluster(gid);
        }
    }
    let num_clusters = global_of_root.len();
    Ok(DbscanOutcome {
        labels,
        num_clusters,
        metrics: out.metrics,
    })
}

/// Centralized reference DBSCAN, for tests.
pub fn dbscan_reference(data: &PointSet, eps: f64, min_pts: usize) -> (Vec<Label>, usize) {
    let (cluster, _) = dbscan_local(data, eps, min_pts);
    let mut remap: HashMap<u32, u32> = HashMap::new();
    let mut labels = Vec::with_capacity(data.len());
    for c in cluster {
        match c {
            Some(local) => {
                let next = remap.len() as u32;
                let gid = *remap.entry(local).or_insert(next);
                labels.push(Label::Cluster(gid));
            }
            None => labels.push(Label::Noise),
        }
    }
    (labels, remap.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_core::OutlierParams;
    use dod_partition::{Dmt, UniSpace};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn config(eps: f64, min_pts: usize) -> DodConfig {
        DodConfig::builder(OutlierParams::new(eps, min_pts).unwrap())
            .sample_rate(1.0)
            .block_size(64)
            .num_reducers(4)
            .target_partitions(9)
            .build()
            .unwrap()
    }

    /// Two labelings are equivalent if they induce the same partition of
    /// the non-noise points and the same noise set — modulo cluster ids.
    fn assert_equivalent(a: &[Label], b: &[Label]) {
        assert_eq!(a.len(), b.len());
        let mut fwd: HashMap<u32, u32> = HashMap::new();
        let mut bwd: HashMap<u32, u32> = HashMap::new();
        for (x, y) in a.iter().zip(b.iter()) {
            match (x, y) {
                (Label::Noise, Label::Noise) => {}
                (Label::Cluster(ca), Label::Cluster(cb)) => {
                    assert_eq!(*fwd.entry(*ca).or_insert(*cb), *cb, "cluster split");
                    assert_eq!(*bwd.entry(*cb).or_insert(*ca), *ca, "cluster merge");
                }
                other => panic!("noise/cluster mismatch: {other:?}"),
            }
        }
    }

    fn two_blobs_and_noise() -> PointSet {
        let mut rng = StdRng::seed_from_u64(5);
        let mut data = PointSet::new(2).unwrap();
        for _ in 0..200 {
            data.push(&[rng.gen_range(0.0..2.0), rng.gen_range(0.0..2.0)])
                .unwrap();
        }
        for _ in 0..200 {
            data.push(&[rng.gen_range(8.0..10.0), rng.gen_range(8.0..10.0)])
                .unwrap();
        }
        data.push(&[5.0, 5.0]).unwrap(); // lone noise point
        data
    }

    #[test]
    fn local_dbscan_finds_two_blobs() {
        let data = two_blobs_and_noise();
        let (labels, n) = dbscan_reference(&data, 0.5, 4);
        assert_eq!(n, 2);
        assert_eq!(labels[400], Label::Noise);
        // All of blob 1 in one cluster.
        let first = labels[0];
        assert!(matches!(first, Label::Cluster(_)));
        for l in &labels[..200] {
            assert_eq!(*l, first);
        }
    }

    #[test]
    fn distributed_matches_reference_on_blobs() {
        let data = two_blobs_and_noise();
        let (expected, n_ref) = dbscan_reference(&data, 0.5, 4);
        for strategy in [&UniSpace as &dyn PartitionStrategy, &Dmt::default()] {
            let out = dbscan(&data, &config(0.5, 4), strategy).unwrap();
            assert_eq!(out.num_clusters, n_ref);
            assert_equivalent(&out.labels, &expected);
        }
    }

    #[test]
    fn cluster_spanning_partitions_is_merged() {
        // A dense line crossing the whole domain: every grid partitioning
        // cuts it, so the merge step must reunify it.
        let mut pts = Vec::new();
        for i in 0..400 {
            pts.push((i as f64 * 0.05, 5.0));
            pts.push((i as f64 * 0.05, 5.05));
        }
        let data = PointSet::from_xy(&pts);
        let out = dbscan(&data, &config(0.3, 3), &UniSpace).unwrap();
        assert_eq!(out.num_clusters, 1, "the line is one cluster");
        assert!(out.labels.iter().all(|l| *l == Label::Cluster(0)));
    }

    #[test]
    fn random_data_matches_reference_semantics() {
        // On arbitrary data, border points may legitimately be assigned
        // to different (adjacent) clusters than a centralized run — the
        // classic DBSCAN ambiguity. The exact invariants are:
        // same noise set, same core-point partition, and every border
        // point in a cluster that has a core point within eps of it.
        let (eps, min_pts) = (0.7, 4);
        let mut rng = StdRng::seed_from_u64(11);
        let mut data = PointSet::new(2).unwrap();
        for _ in 0..600 {
            data.push(&[rng.gen_range(0.0..12.0), rng.gen_range(0.0..12.0)])
                .unwrap();
        }
        let (expected, n_ref) = dbscan_reference(&data, eps, min_pts);
        let (_, is_core) = dbscan_local(&data, eps, min_pts);
        let out = dbscan(&data, &config(eps, min_pts), &UniSpace).unwrap();
        assert_eq!(out.num_clusters, n_ref);

        // Noise sets identical.
        for (i, exp) in expected.iter().enumerate() {
            assert_eq!(
                out.labels[i] == Label::Noise,
                *exp == Label::Noise,
                "noise mismatch at {i}"
            );
        }
        // Core-point partition identical (bijective id mapping).
        let mut fwd: HashMap<u32, u32> = HashMap::new();
        let mut bwd: HashMap<u32, u32> = HashMap::new();
        for i in 0..data.len() {
            if !is_core[i] {
                continue;
            }
            let (Label::Cluster(ca), Label::Cluster(cb)) = (out.labels[i], expected[i]) else {
                panic!("core point {i} not clustered");
            };
            assert_eq!(
                *fwd.entry(ca).or_insert(cb),
                cb,
                "core cluster split at {i}"
            );
            assert_eq!(
                *bwd.entry(cb).or_insert(ca),
                ca,
                "core cluster merge at {i}"
            );
        }
        // Border points: assigned cluster must contain a core point
        // within eps.
        let eps_sq = eps * eps;
        for i in 0..data.len() {
            if is_core[i] {
                continue;
            }
            if let Label::Cluster(c) = out.labels[i] {
                let ok = (0..data.len()).any(|j| {
                    is_core[j]
                        && out.labels[j] == Label::Cluster(c)
                        && dod_core::point::dist_sq(data.point(i), data.point(j)) <= eps_sq
                });
                assert!(ok, "border point {i} assigned to a non-adjacent cluster");
            }
        }
    }

    #[test]
    fn empty_input() {
        let out = dbscan(&PointSet::new(2).unwrap(), &config(1.0, 3), &UniSpace).unwrap();
        assert!(out.labels.is_empty());
        assert_eq!(out.num_clusters, 0);
    }

    #[test]
    fn all_noise_when_min_pts_too_high() {
        let data = PointSet::from_xy(&[(0.0, 0.0), (10.0, 10.0), (20.0, 0.0)]);
        let out = dbscan(&data, &config(1.0, 5), &UniSpace).unwrap();
        assert_eq!(out.num_clusters, 0);
        assert!(out.labels.iter().all(|l| *l == Label::Noise));
    }
}

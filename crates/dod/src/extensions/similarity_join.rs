//! Exact distance self-join on the DOD framework.
//!
//! Finds every unordered pair `(a, b)` with `dist(a, b) <= r`, in one
//! MapReduce job, using the same supporting-area routing as outlier
//! detection. Deduplication invariant: a pair is emitted by the reducer
//! of the partition in which its **smaller id is a core point** — the
//! smaller point is core in exactly one partition, and the larger point
//! is guaranteed visible there (it is within `r` of the partition, hence
//! core or support by Definition 3.3), so every qualifying pair appears
//! exactly once.

use crate::framework::{DodMapper, InputPoint, TaggedPoint};
use crate::pipeline::{DodConfig, DodError};
use dod_core::{GridSpec, PointId, PointSet};
use dod_partition::{sample_points, PartitionStrategy, PlanContext};
use mapreduce::{run_job, BlockStore, JobMetrics, Reducer};
use std::sync::Arc;

/// Reducer of the join job: emits qualifying pairs with the
/// smaller-id-core deduplication rule.
pub struct JoinReducer {
    r: f64,
    dim: usize,
    metric: dod_core::Metric,
}

impl JoinReducer {
    /// Creates the reducer for distance threshold `r` over `dim`-d data.
    pub fn new(r: f64, dim: usize, metric: dod_core::Metric) -> Self {
        JoinReducer { r, dim, metric }
    }

    fn join_partition(&self, values: &[TaggedPoint], emit: &mut dyn FnMut((PointId, PointId))) {
        if values.len() < 2 {
            return;
        }
        // Bucket all points into a grid of cell side r; candidates for a
        // point live in the 3^d neighborhood.
        let mut points = PointSet::new(self.dim).expect("dim >= 1");
        for v in values {
            points.push(&v.coords).expect("same dim");
        }
        let bounds = points.bounding_rect().expect("non-empty");
        let cells: Vec<usize> = (0..self.dim)
            .map(|i| {
                let extent = bounds.extent(i);
                if extent == 0.0 {
                    1
                } else {
                    ((extent / self.r).ceil() as usize).clamp(1, 512)
                }
            })
            .collect();
        let grid = GridSpec::new(bounds, cells).expect("valid grid");
        let mut buckets: std::collections::HashMap<usize, Vec<u32>> = Default::default();
        for (i, p) in points.iter().enumerate() {
            buckets.entry(grid.cell_of(p)).or_default().push(i as u32);
        }
        // Cells wider than r when clamped: neighborhood radius adapts.
        let radius: usize = (0..self.dim)
            .map(|i| {
                let w = grid.width(i);
                if w == 0.0 {
                    0
                } else {
                    (self.r / w).ceil() as usize
                }
            })
            .max()
            .unwrap_or(1);

        let mut cell_ids: Vec<usize> = buckets.keys().copied().collect();
        cell_ids.sort_unstable();
        for &cid in &cell_ids {
            for &ncid in grid.neighborhood(cid, radius, true).iter() {
                if ncid < cid {
                    continue; // each cell pair handled once
                }
                let Some(cell_pts) = buckets.get(&cid) else {
                    continue;
                };
                let Some(other_pts) = buckets.get(&ncid) else {
                    continue;
                };
                for (ai, &a) in cell_pts.iter().enumerate() {
                    let start = if ncid == cid { ai + 1 } else { 0 };
                    for &b in &other_pts[start..] {
                        let (va, vb) = (&values[a as usize], &values[b as usize]);
                        if va.id == vb.id {
                            continue; // same point seen as core+support
                        }
                        let (lo, hi) = if va.id < vb.id { (va, vb) } else { (vb, va) };
                        // Dedup rule: the smaller id must be core here.
                        if lo.support {
                            continue;
                        }
                        if self.metric.within(&va.coords, &vb.coords, self.r) {
                            emit((lo.id, hi.id));
                        }
                    }
                }
            }
        }
    }
}

impl Reducer for JoinReducer {
    type K = u32;
    type V = TaggedPoint;
    type Out = (PointId, PointId);

    fn reduce(
        &self,
        _key: &u32,
        values: Vec<TaggedPoint>,
        emit: &mut dyn FnMut((PointId, PointId)),
    ) {
        self.join_partition(&values, emit);
    }
}

/// Result of a distributed similarity join.
#[derive(Debug)]
pub struct JoinOutcome {
    /// All unordered pairs within distance `r`, sorted.
    pub pairs: Vec<(PointId, PointId)>,
    /// Job metrics.
    pub metrics: JobMetrics,
}

/// Runs the exact self-join over `data` using `strategy` for
/// partitioning; `config.params.r` is the join radius (`k` is unused).
///
/// # Errors
/// Returns [`DodError`] if the job fails or the data is inconsistent.
pub fn similarity_join(
    data: &PointSet,
    config: &DodConfig,
    strategy: &dyn PartitionStrategy,
) -> Result<JoinOutcome, DodError> {
    if data.is_empty() {
        return Ok(JoinOutcome {
            pairs: Vec::new(),
            metrics: JobMetrics::default(),
        });
    }
    let domain = data.bounding_rect()?;
    let sample = sample_points(data, config.sample_rate, config.seed);
    let ctx = PlanContext::new(config.params, config.target_partitions, config.sample_rate);
    let plan = strategy.build_plan(&sample, &domain, &ctx);
    let router = Arc::new(plan.router_with_metric(config.params.r, config.params.metric));

    let items: Vec<InputPoint> = (0..data.len())
        .map(|i| (i as PointId, data.point(i).to_vec()))
        .collect();
    let store = BlockStore::from_items(items, config.block_size, config.replication);
    let mapper = DodMapper::new(router);
    let reducer = JoinReducer::new(config.params.r, domain.dim(), config.params.metric);
    let partitioner = |k: &u32, n: usize| (*k as usize) % n;
    let out = run_job(
        &config.cluster,
        &store,
        &mapper,
        &reducer,
        &partitioner,
        config.num_reducers,
    )?;
    let mut pairs = out.outputs;
    pairs.sort_unstable();
    debug_assert!(pairs.windows(2).all(|w| w[0] != w[1]), "pair emitted twice");
    Ok(JoinOutcome {
        pairs,
        metrics: out.metrics,
    })
}

/// Brute-force reference join, for tests and small data.
pub fn reference_join(data: &PointSet, r: f64) -> Vec<(PointId, PointId)> {
    reference_join_metric(data, r, dod_core::Metric::Euclidean)
}

/// Brute-force reference join under an arbitrary metric.
pub fn reference_join_metric(
    data: &PointSet,
    r: f64,
    metric: dod_core::Metric,
) -> Vec<(PointId, PointId)> {
    let mut pairs = Vec::new();
    for i in 0..data.len() {
        for j in i + 1..data.len() {
            if metric.within(data.point(i), data.point(j), r) {
                pairs.push((i as PointId, j as PointId));
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_core::OutlierParams;
    use dod_partition::{Dmt, Domain, UniSpace};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn config(r: f64) -> DodConfig {
        DodConfig::builder(OutlierParams::new(r, 1).unwrap())
            .sample_rate(1.0)
            .block_size(64)
            .num_reducers(4)
            .target_partitions(9)
            .build()
            .unwrap()
    }

    fn random_data(seed: u64, n: usize, extent: f64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = PointSet::new(2).unwrap();
        for _ in 0..n {
            data.push(&[rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)])
                .unwrap();
        }
        data
    }

    #[test]
    fn matches_reference_join() {
        for seed in 0..5 {
            let data = random_data(seed, 300, 10.0);
            let out = similarity_join(&data, &config(0.8), &UniSpace).unwrap();
            assert_eq!(out.pairs, reference_join(&data, 0.8), "seed {seed}");
        }
    }

    #[test]
    fn works_with_dmt_partitioning() {
        let data = random_data(9, 400, 12.0);
        let out = similarity_join(&data, &config(0.5), &Dmt::default()).unwrap();
        assert_eq!(out.pairs, reference_join(&data, 0.5));
    }

    #[test]
    fn no_pair_duplicated_even_with_grid_partitioning() {
        // Points placed symmetrically around partition boundaries.
        let mut pts = Vec::new();
        for i in 0..20 {
            let x = i as f64;
            pts.push((x - 0.05, 5.0));
            pts.push((x + 0.05, 5.0));
        }
        let data = PointSet::from_xy(&pts);
        let out = similarity_join(&data, &config(0.2), &Domain).unwrap();
        let mut dedup = out.pairs.clone();
        dedup.dedup();
        assert_eq!(dedup, out.pairs);
        assert_eq!(out.pairs, reference_join(&data, 0.2));
    }

    #[test]
    fn empty_and_single() {
        let empty = PointSet::new(2).unwrap();
        assert!(similarity_join(&empty, &config(1.0), &UniSpace)
            .unwrap()
            .pairs
            .is_empty());
        let mut one = PointSet::new(2).unwrap();
        one.push(&[1.0, 1.0]).unwrap();
        assert!(similarity_join(&one, &config(1.0), &UniSpace)
            .unwrap()
            .pairs
            .is_empty());
    }

    #[test]
    fn duplicate_points_pair_up() {
        let data = PointSet::from_xy(&[(1.0, 1.0), (1.0, 1.0), (1.0, 1.0)]);
        let out = similarity_join(&data, &config(0.5), &UniSpace).unwrap();
        assert_eq!(out.pairs, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn boundary_distance_included() {
        let data = PointSet::from_xy(&[(0.0, 0.0), (1.0, 0.0)]);
        let out = similarity_join(&data, &config(1.0), &UniSpace).unwrap();
        assert_eq!(out.pairs, vec![(0, 1)]);
    }
}

//! The single-job DOD framework (Section III-B, Figures 2 and 3).
//!
//! Mappers read raw `(id, coordinates)` records and emit, per point, one
//! core record `(cell, "0-p")` plus zero or more support records
//! `(cell, "1-p")`. After the shuffle groups records by partition id,
//! each reducer materializes the partition (core + support points), runs
//! the detection algorithm assigned to it by the algorithm plan, and
//! reports the outliers among the core points only.

use dod_core::{OutlierParams, PointId, PointSet};
use dod_detect::cost::AlgorithmKind;
use dod_detect::{Detection, Partition, PartitionState};
use dod_obs::Obs;
use dod_partition::Router;
use mapreduce::checkpoint::Json;
use mapreduce::{Durable, EstimateSize, Mapper, Reducer};
use std::sync::Arc;

/// One raw input record: the point's stable id and its coordinates.
pub type InputPoint = (PointId, Vec<f64>);

/// The intermediate value of the detection job: a point tagged as core
/// (`support == false`, the paper's `"0-p"` prefix) or support
/// (`support == true`, the `"1-p"` prefix).
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedPoint {
    /// Whether the point is replicated support (tag `1`) or core (tag `0`).
    pub support: bool,
    /// Stable id of the point.
    pub id: PointId,
    /// Coordinates.
    pub coords: Vec<f64>,
}

impl EstimateSize for TaggedPoint {
    fn estimated_bytes(&self) -> usize {
        1 + 8 + 8 * self.coords.len()
    }
}

// Checkpointed detection jobs persist tagged points as `[support, id,
// coords]`; f64 coordinates round-trip bit-exactly (see
// `mapreduce::checkpoint::Durable`), keeping resumed runs identical to
// uninterrupted ones.
impl Durable for TaggedPoint {
    fn encode(&self, out: &mut String) {
        out.push('[');
        self.support.encode(out);
        out.push(',');
        self.id.encode(out);
        out.push(',');
        self.coords.encode(out);
        out.push(']');
    }
    fn decode(v: &Json) -> Option<Self> {
        let (support, id, coords) = <(bool, PointId, Vec<f64>)>::decode(v)?;
        Some(TaggedPoint {
            support,
            id,
            coords,
        })
    }
}

/// Map function of the detection job: supporting-area routing
/// (lines 2–6 of the Figure 3 map pseudocode).
pub struct DodMapper {
    router: Arc<Router>,
}

impl DodMapper {
    /// Creates the mapper from the preprocessing job's routing structure
    /// ("the partitioning plan is given as input to Mappers").
    pub fn new(router: Arc<Router>) -> Self {
        DodMapper { router }
    }
}

impl Mapper for DodMapper {
    type In = InputPoint;
    type K = u32;
    type V = TaggedPoint;

    fn map(&self, item: &InputPoint, emit: &mut dyn FnMut(u32, TaggedPoint)) {
        let (id, coords) = item;
        let routing = self.router.route(coords);
        emit(
            routing.core,
            TaggedPoint {
                support: false,
                id: *id,
                coords: coords.clone(),
            },
        );
        for pid in routing.support {
            emit(
                pid,
                TaggedPoint {
                    support: true,
                    id: *id,
                    coords: coords.clone(),
                },
            );
        }
    }
}

/// Reduce function of the detection job (Figure 3 reduce pseudocode): the
/// algorithm plan selects which detector runs on each partition.
pub struct DodReducer {
    params: OutlierParams,
    dim: usize,
    algorithms: Arc<Vec<AlgorithmKind>>,
    obs: Obs,
}

impl DodReducer {
    /// Creates the reducer from the algorithm plan.
    pub fn new(params: OutlierParams, dim: usize, algorithms: Arc<Vec<AlgorithmKind>>) -> Self {
        DodReducer {
            params,
            dim,
            algorithms,
            obs: Obs::null(),
        }
    }

    /// Attaches an observability handle: every [`Self::detect`] call then
    /// emits its per-partition `detect.*` work counters through it.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The algorithm the plan assigns to `partition_id` (out-of-plan ids
    /// fall back to Nested-Loop).
    pub fn algorithm_for(&self, partition_id: u32) -> AlgorithmKind {
        self.algorithms
            .get(partition_id as usize)
            .copied()
            .unwrap_or(AlgorithmKind::NestedLoop)
    }

    /// Materializes a [`Partition`] from the shuffled records of one
    /// partition key.
    pub fn build_partition(&self, values: Vec<TaggedPoint>) -> Partition {
        let mut core = PointSet::new(self.dim).expect("dim >= 1");
        let mut core_ids = Vec::new();
        let mut support = PointSet::new(self.dim).expect("dim >= 1");
        for v in values {
            if v.support {
                support.push(&v.coords).expect("same dim");
            } else {
                core.push(&v.coords).expect("same dim");
                core_ids.push(v.id);
            }
        }
        Partition::new(core, core_ids, support).expect("consistent construction")
    }

    /// Runs the assigned detector on one materialized partition, emitting
    /// its work counters when an observability handle is attached.
    ///
    /// The detection goes through [`PartitionState`] — the same build +
    /// query split the resident engine serves requests from — so the
    /// batch pipeline and the engine share one detection code path.
    pub fn detect(&self, partition_id: u32, partition: Arc<Partition>) -> Detection {
        let kind = self.algorithm_for(partition_id);
        let state = PartitionState::build(kind, partition, self.params);
        let detection = state.detect();
        detection
            .stats
            .record_to(&self.obs, partition_id as usize, kind.name());
        detection
    }
}

impl Reducer for DodReducer {
    type K = u32;
    type V = TaggedPoint;
    type Out = PointId;

    fn reduce(&self, key: &u32, values: Vec<TaggedPoint>, emit: &mut dyn FnMut(PointId)) {
        let partition = Arc::new(self.build_partition(values));
        let detection = self.detect(*key, partition);
        for id in detection.outliers {
            emit(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_core::{GridSpec, Rect};
    use dod_partition::PartitionPlan;

    fn router_2x2() -> Arc<Router> {
        let domain = Rect::new(vec![0.0, 0.0], vec![10.0, 10.0]).unwrap();
        let plan = PartitionPlan::from_grid(GridSpec::uniform(domain, 2).unwrap());
        Arc::new(plan.router(1.0))
    }

    #[test]
    fn mapper_emits_core_and_support_records() {
        let mapper = DodMapper::new(router_2x2());
        let mut records: Vec<(u32, TaggedPoint)> = Vec::new();
        // Interior point: one core record only.
        mapper.map(&(7, vec![2.0, 2.0]), &mut |k, v| records.push((k, v)));
        assert_eq!(records.len(), 1);
        assert!(!records[0].1.support);
        assert_eq!(records[0].1.id, 7);

        // Boundary point near the center cross: 1 core + 3 support.
        records.clear();
        mapper.map(&(8, vec![4.8, 4.8]), &mut |k, v| records.push((k, v)));
        assert_eq!(records.len(), 4);
        assert_eq!(records.iter().filter(|(_, v)| v.support).count(), 3);
        // All four partition keys distinct.
        let mut keys: Vec<u32> = records.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 4);
    }

    #[test]
    fn reducer_separates_core_and_support() {
        let reducer = DodReducer::new(
            OutlierParams::new(1.0, 1).unwrap(),
            2,
            Arc::new(vec![AlgorithmKind::Reference]),
        );
        let values = vec![
            TaggedPoint {
                support: false,
                id: 3,
                coords: vec![0.0, 0.0],
            },
            TaggedPoint {
                support: true,
                id: 9,
                coords: vec![0.5, 0.0],
            },
        ];
        let partition = Arc::new(reducer.build_partition(values));
        assert_eq!(partition.core().len(), 1);
        assert_eq!(partition.support().len(), 1);
        assert_eq!(partition.core_id(0), 3);
        // The support point rescues the core point from outlier status.
        let det = reducer.detect(0, partition);
        assert!(det.outliers.is_empty());
    }

    #[test]
    fn reducer_reports_only_core_outliers() {
        let reducer = DodReducer::new(
            OutlierParams::new(1.0, 1).unwrap(),
            2,
            Arc::new(vec![AlgorithmKind::NestedLoop]),
        );
        let mut out = Vec::new();
        reducer.reduce(
            &0,
            vec![
                TaggedPoint {
                    support: false,
                    id: 1,
                    coords: vec![0.0, 0.0],
                },
                TaggedPoint {
                    support: true,
                    id: 2,
                    coords: vec![9.0, 9.0],
                },
            ],
            &mut |o| out.push(o),
        );
        // Core point 1 has no neighbor within 1.0 -> outlier; support
        // point 2 is isolated too but must not be reported here.
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn unknown_partition_falls_back_to_nested_loop() {
        let reducer = DodReducer::new(OutlierParams::new(1.0, 1).unwrap(), 2, Arc::new(vec![]));
        let partition = Arc::new(reducer.build_partition(vec![TaggedPoint {
            support: false,
            id: 0,
            coords: vec![1.0, 1.0],
        }]));
        let det = reducer.detect(99, partition);
        assert_eq!(det.outliers, vec![0]);
    }

    #[test]
    fn tagged_point_size_estimate() {
        let t = TaggedPoint {
            support: true,
            id: 1,
            coords: vec![0.0, 0.0],
        };
        assert_eq!(t.estimated_bytes(), 1 + 8 + 16);
    }
}

//! The end-to-end DOD pipeline (Figure 6).
//!
//! A run executes the two MapReduce jobs of the full-fledged system:
//!
//! 1. **Preprocessing** on a small random sample: partition-plan
//!    generation (any [`PartitionStrategy`]), algorithm-plan selection
//!    (Corollary 4.3 over the candidate set), and partition→reducer
//!    allocation (multi-bin packing). Its wall time is the `Preprocess`
//!    bar of Figure 10.
//! 2. **Detection** over the full dataset: supporting-area routing at the
//!    mappers (`Map` bar), shuffle, and per-partition detection at the
//!    reducers (`Reduce` bar).
//!
//! The Domain baseline (no supporting areas) instead runs the two-job
//! candidate/verification protocol of [`crate::two_job`].

pub use crate::config::{ConfigError, DodConfig};

use crate::framework::{DodMapper, DodReducer, InputPoint};
use crate::two_job::{
    Candidate, CandidateIndex, CandidateMapper, CandidateReducer, VerifyMapper, VerifyReducer,
};
use dod_core::{CoreError, OutlierParams, PointId, PointSet};
use dod_detect::cost::{AlgorithmKind, PAPER_CANDIDATES};
use dod_obs::Value;
use dod_partition::{
    sample_points, Dmt, LocalCostEstimator, MultiTacticPlan, PartitionStrategy, PlanContext, Router,
};
use mapreduce::checkpoint::{fingerprint_u64s, CheckpointStore, JobFingerprint};
use mapreduce::{run_job_obs, BlockStore, JobError, JobMetrics, JobOutcome};
use std::collections::HashSet;
use std::sync::Arc;

/// Per-job metrics, sorted outlier ids, per-partition reduce times, and
/// the number of tasks diverted to the dead-letter queue, returned by
/// one detection protocol run.
type JobOutputs = (Vec<JobMetrics>, Vec<PointId>, Vec<(u32, Duration)>, u64);
use std::time::{Duration, Instant};

/// Errors from a pipeline run.
///
/// This is the single error surface of the crate (re-exported as
/// [`crate::Error`]): configuration validation, geometry/parameter
/// checks, and MapReduce execution failures all arrive here, with the
/// underlying error reachable through [`std::error::Error::source`].
#[derive(Debug)]
#[non_exhaustive]
pub enum DodError {
    /// A MapReduce job failed (task retries exhausted, or records were
    /// emitted to a job with no reducers).
    Job(JobError),
    /// Invalid geometry or parameters (dimension mismatch, empty input
    /// where points are required, out-of-range parameter).
    Core(CoreError),
    /// A configuration failed [`DodConfig::builder`] validation.
    Config(ConfigError),
}

impl std::fmt::Display for DodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DodError::Job(e) => write!(f, "job failed: {e}"),
            DodError::Core(e) => write!(f, "invalid input: {e}"),
            DodError::Config(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl std::error::Error for DodError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DodError::Job(e) => Some(e),
            DodError::Core(e) => Some(e),
            DodError::Config(e) => Some(e),
        }
    }
}

impl From<JobError> for DodError {
    fn from(e: JobError) -> Self {
        DodError::Job(e)
    }
}

impl From<CoreError> for DodError {
    fn from(e: CoreError) -> Self {
        DodError::Core(e)
    }
}

impl From<ConfigError> for DodError {
    fn from(e: ConfigError) -> Self {
        DodError::Config(e)
    }
}

/// How reducers pick their detection algorithm.
#[derive(Debug, Clone)]
pub enum DetectionMode {
    /// One algorithm for every partition — the "monolithic" approach of
    /// all prior work (Section I).
    Fixed(AlgorithmKind),
    /// Per-partition selection over a candidate set (Corollary 4.3).
    MultiTactic(Vec<AlgorithmKind>),
}

/// Stage breakdown of a run (the Figure 10 bars).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Preprocessing job wall time (sampling + plan generation).
    pub preprocess: Duration,
    /// Simulated map-stage makespan, summed over jobs.
    pub map: Duration,
    /// Simulated reduce-stage makespan, summed over jobs.
    pub reduce: Duration,
}

impl StageBreakdown {
    /// Simulated end-to-end execution time.
    pub fn total(&self) -> Duration {
        self.preprocess + self.map + self.reduce
    }

    /// Reconstructs the breakdown from an event stream (e.g. a replayed
    /// `--trace` JSONL file): sums the `dod.stage` spans by their `stage`
    /// label. A trace of a run replays to exactly the breakdown that run
    /// reported, because the pipeline emits those spans from the same
    /// `Duration` values.
    pub fn from_events(events: &[dod_obs::Event]) -> StageBreakdown {
        let mut breakdown = StageBreakdown::default();
        for event in events {
            if event.name != "dod.stage" {
                continue;
            }
            let Some(nanos) = event.span_nanos() else {
                continue;
            };
            let d = Duration::from_nanos(nanos);
            match event.label("stage").and_then(Value::as_str) {
                Some("preprocess") => breakdown.preprocess += d,
                Some("map") => breakdown.map += d,
                Some("reduce") => breakdown.reduce += d,
                _ => {}
            }
        }
        breakdown
    }
}

/// Full diagnostics of a run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Per-stage simulated times.
    pub breakdown: StageBreakdown,
    /// Metrics of every MapReduce job executed (1 normally, 2 for the
    /// Domain baseline).
    pub jobs: Vec<JobMetrics>,
    /// Number of partitions in the plan.
    pub num_partitions: usize,
    /// How many partitions each algorithm was assigned to.
    pub algorithm_histogram: Vec<(AlgorithmKind, usize)>,
    /// Total bytes crossing all shuffles.
    pub shuffle_bytes: u64,
    /// Measured reduce time per partition of the detection job.
    pub partition_times: Vec<(u32, Duration)>,
    /// Predicted per-partition costs from the plan.
    pub predicted_costs: Vec<f64>,
    /// Tasks diverted to the dead-letter queue across all jobs. Non-zero
    /// only for checkpointed runs (see [`DodConfig::checkpoint`] — the
    /// field on the config struct, set via the builder's `checkpoint`
    /// method) whose jobs finished [`JobOutcome::PartialWithDlq`]; the
    /// outlier set is then a partial result.
    pub diverted_tasks: u64,
}

/// The result of a pipeline run.
#[derive(Debug, Clone, Default)]
pub struct DodOutcome {
    /// Ids of all detected outliers, ascending.
    pub outliers: Vec<PointId>,
    /// Diagnostics.
    pub report: RunReport,
}

/// The configured pipeline. Construct with [`DodRunner::builder`].
///
/// Cloning is cheap (the strategy is shared behind an [`Arc`]); a clone
/// runs against the same strategy and a copy of the configuration. The
/// resident engine relies on this to re-plan with a reseeded config via
/// [`DodRunner::with_config`].
#[derive(Clone)]
pub struct DodRunner {
    config: DodConfig,
    strategy: Arc<dyn PartitionStrategy + Send + Sync>,
    mode: DetectionMode,
}

/// Builder for [`DodRunner`].
pub struct DodRunnerBuilder {
    config: Option<DodConfig>,
    params: Option<OutlierParams>,
    strategy: Arc<dyn PartitionStrategy + Send + Sync>,
    mode: DetectionMode,
}

impl Default for DodRunnerBuilder {
    fn default() -> Self {
        DodRunnerBuilder {
            config: None,
            params: None,
            strategy: Arc::new(Dmt::default()),
            mode: DetectionMode::MultiTactic(PAPER_CANDIDATES.to_vec()),
        }
    }
}

impl DodRunnerBuilder {
    /// Sets the outlier parameters (required unless a full config is
    /// given).
    pub fn params(mut self, params: OutlierParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Replaces the whole configuration.
    pub fn config(mut self, config: DodConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Sets the partitioning strategy (default: [`Dmt`]).
    pub fn strategy(mut self, strategy: impl PartitionStrategy + Send + Sync + 'static) -> Self {
        self.strategy = Arc::new(strategy);
        self
    }

    /// Uses one fixed detection algorithm everywhere.
    pub fn fixed(mut self, kind: AlgorithmKind) -> Self {
        self.mode = DetectionMode::Fixed(kind);
        self
    }

    /// Uses per-partition algorithm selection over the paper's candidate
    /// set (Cell-Based + Nested-Loop).
    pub fn multi_tactic(mut self) -> Self {
        self.mode = DetectionMode::MultiTactic(PAPER_CANDIDATES.to_vec());
        self
    }

    /// Uses per-partition algorithm selection over a custom candidate set.
    pub fn candidates(mut self, candidates: Vec<AlgorithmKind>) -> Self {
        self.mode = DetectionMode::MultiTactic(candidates);
        self
    }

    /// Finalizes the runner.
    ///
    /// # Panics
    /// Panics if neither `params` nor a full `config` was provided.
    pub fn build(self) -> DodRunner {
        let config = match (self.config, self.params) {
            (Some(c), _) => c,
            (None, Some(p)) => DodConfig::new(p),
            (None, None) => panic!("DodRunner::builder() needs .params(...) or .config(...)"),
        };
        DodRunner {
            config,
            strategy: self.strategy,
            mode: self.mode,
        }
    }
}

/// Output of the preprocessing job: everything the detection phase (or a
/// resident engine) needs to route points and detect, plus timing.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// The multi-tactic plan: partitions, per-partition algorithms,
    /// reducer allocation, and predicted costs.
    pub mt: MultiTacticPlan,
    /// Supporting-area routing structure over the plan's partitions.
    pub router: Arc<Router>,
    /// Number of points in the preprocessing sample.
    pub sample_size: usize,
    /// Wall time of the preprocessing job.
    pub elapsed: Duration,
}

impl DodRunner {
    /// Starts building a runner.
    pub fn builder() -> DodRunnerBuilder {
        DodRunnerBuilder::default()
    }

    /// The active configuration.
    pub fn config(&self) -> &DodConfig {
        &self.config
    }

    /// A runner with the same strategy and detection mode but a different
    /// configuration — e.g. the same pipeline reseeded for a plan refresh.
    pub fn with_config(&self, config: DodConfig) -> DodRunner {
        DodRunner {
            config,
            strategy: Arc::clone(&self.strategy),
            mode: self.mode.clone(),
        }
    }

    /// Runs the preprocessing job alone (Figure 6, top): sampling,
    /// partition-plan generation, per-partition algorithm selection, and
    /// reducer allocation.
    ///
    /// [`DodRunner::run`] calls this internally; a resident engine calls
    /// it once and serves many requests against the returned plan.
    ///
    /// # Errors
    /// Returns [`DodError::Core`] if the input is dimensionally
    /// inconsistent or empty where points are required.
    pub fn preprocess(&self, data: &PointSet) -> Result<Preprocessed, DodError> {
        let cfg = &self.config;
        let t0 = Instant::now();
        let domain = data.bounding_rect()?;
        let sample = sample_points(data, cfg.sample_rate, cfg.seed);
        let ctx = PlanContext::new(cfg.params, cfg.target_partitions, cfg.sample_rate);
        let plan = self.strategy.build_plan(&sample, &domain, &ctx);
        let allocation = cfg
            .allocation
            .unwrap_or_else(|| self.strategy.default_allocation());
        let (weights, backend) = cfg.calibration.resolve(cfg.params.metric, domain.dim());
        let mut mt = if cfg.paper_cost_model {
            match &self.mode {
                DetectionMode::Fixed(kind) => MultiTacticPlan::monolithic(
                    plan,
                    &sample,
                    cfg.sample_rate,
                    cfg.params,
                    *kind,
                    cfg.num_reducers,
                    allocation,
                ),
                DetectionMode::MultiTactic(candidates) => MultiTacticPlan::build_weighted(
                    plan,
                    &sample,
                    cfg.sample_rate,
                    cfg.params,
                    candidates,
                    cfg.num_reducers,
                    allocation,
                    weights,
                ),
            }
        } else {
            let (candidates, fixed): (Vec<AlgorithmKind>, Option<AlgorithmKind>) = match &self.mode
            {
                DetectionMode::Fixed(kind) => (vec![*kind], Some(*kind)),
                DetectionMode::MultiTactic(c) => (c.clone(), None),
            };
            let mut estimator =
                LocalCostEstimator::new(&domain, &sample, cfg.sample_rate, cfg.params, 32)
                    .with_weights(weights);
            if !cfg.calibration.is_unit() {
                // A measured profile asks for measured quantities: route
                // density estimation through the same kernel predicates
                // the calibrated per-pair term was benchmarked on.
                estimator = estimator.with_kernel_density(&sample);
            }
            let estimates = estimator.estimate(&plan, &sample, &candidates);
            MultiTacticPlan::from_estimates(
                plan,
                &estimates,
                fixed,
                cfg.num_reducers,
                allocation,
                weights,
            )
        };
        // Which kernel backend's calibration rows priced this plan; stays
        // "scalar" when the profile has no rows for the active backend.
        mt.report.backend = backend.name().to_owned();
        let router = Arc::new(mt.plan.router_with_metric(cfg.params.r, cfg.params.metric));
        let elapsed = t0.elapsed();
        if cfg.obs.enabled() {
            // One mark per partition documents the DMT plan decision
            // (Corollary 4.3: the cheapest candidate per partition).
            for (pid, &alg) in mt.algorithms.iter().enumerate() {
                let mut labels = vec![
                    ("partition", Value::from(pid)),
                    ("algorithm", Value::from(alg.name())),
                ];
                if let Some(&cost) = mt.predicted_costs.get(pid) {
                    labels.push(("predicted_cost", Value::from(cost)));
                }
                if let Some(p) = mt.report.partitions.get(pid) {
                    labels.push(("n_est", Value::from(p.n_est)));
                    labels.push(("margin", Value::from(p.margin)));
                }
                cfg.obs.mark("dod.plan.partition", &labels);
            }
            cfg.obs.mark(
                "dod.plan",
                &[
                    ("num_partitions", Value::from(mt.num_partitions())),
                    ("num_reducers", Value::from(cfg.num_reducers)),
                    ("sample_size", Value::from(sample.len())),
                ],
            );
        }
        Ok(Preprocessed {
            mt,
            router,
            sample_size: sample.len(),
            elapsed,
        })
    }

    /// Detects all distance-threshold outliers in `data`.
    ///
    /// # Errors
    /// Returns [`DodError`] if a MapReduce job exhausts its retries or the
    /// input is dimensionally inconsistent.
    pub fn run(&self, data: &PointSet) -> Result<DodOutcome, DodError> {
        if data.is_empty() {
            return Ok(DodOutcome::default());
        }
        let cfg = &self.config;

        // ---- Preprocessing job (Figure 6, top). ----
        let Preprocessed {
            mt,
            router,
            elapsed: preprocess,
            ..
        } = self.preprocess(data)?;

        // ---- Load into the block store. ----
        let items: Vec<InputPoint> = (0..data.len())
            .map(|i| (i as PointId, data.point(i).to_vec()))
            .collect();
        let store = BlockStore::from_items(items, cfg.block_size, cfg.replication);

        // ---- Detection (single-job or two-job). ----
        let detection = if self.strategy.uses_support_area() {
            self.run_single_job(&store, &mt, router)?
        } else {
            self.run_two_job(&store, &mt)?
        };

        let mut histogram: Vec<(AlgorithmKind, usize)> = Vec::new();
        for &alg in &mt.algorithms {
            match histogram.iter_mut().find(|(a, _)| *a == alg) {
                Some((_, n)) => *n += 1,
                None => histogram.push((alg, 1)),
            }
        }
        histogram.sort_by_key(|(a, _)| *a);

        let (jobs, outliers, partition_times, diverted_tasks) = detection;
        let breakdown = StageBreakdown {
            preprocess,
            map: jobs.iter().map(|j| j.map_makespan).sum(),
            reduce: jobs.iter().map(|j| j.reduce_makespan).sum(),
        };
        // The Figure 10 bars, one span each, carrying the exact durations
        // of the StageBreakdown so a JSONL trace replays to the same
        // numbers (see `breakdown_from_events`).
        cfg.obs.record_duration(
            "dod.stage",
            breakdown.preprocess,
            &[("stage", Value::from("preprocess"))],
        );
        cfg.obs
            .record_duration("dod.stage", breakdown.map, &[("stage", Value::from("map"))]);
        cfg.obs.record_duration(
            "dod.stage",
            breakdown.reduce,
            &[("stage", Value::from("reduce"))],
        );
        cfg.obs.flush();
        let shuffle_bytes = jobs.iter().map(|j| j.shuffle_bytes).sum();
        Ok(DodOutcome {
            outliers,
            report: RunReport {
                breakdown,
                jobs,
                num_partitions: mt.num_partitions(),
                algorithm_histogram: histogram,
                shuffle_bytes,
                partition_times,
                predicted_costs: mt.predicted_costs.clone(),
                diverted_tasks,
            },
        })
    }

    /// Opens the checkpoint store for one of the pipeline's jobs, or
    /// `None` when the config carries no durability spec. The job id is
    /// the operator's name plus a per-job `suffix`; the fingerprint tag
    /// binds the store to the parameters and plan that produced it, so a
    /// resumed run against different inputs starts fresh instead of
    /// restoring foreign state.
    fn open_store(
        &self,
        suffix: &str,
        map_tasks: usize,
        tag: String,
    ) -> Result<Option<CheckpointStore>, DodError> {
        let Some(spec) = &self.config.checkpoint else {
            return Ok(None);
        };
        let fingerprint = JobFingerprint {
            map_tasks,
            reducers: self.config.num_reducers,
            tag,
        };
        CheckpointStore::open(&spec.dir, &format!("{}{suffix}", spec.job_id), &fingerprint)
            .map(Some)
            .map_err(|e| DodError::Job(JobError::Checkpoint(e.to_string())))
    }

    /// Fingerprint tag of one job: `r`, `k`, metric, seed, and the
    /// partition plan (allocation + per-partition algorithms), plus a
    /// job-specific `extra` word (the verify job hashes its candidate
    /// set in).
    fn job_tag(&self, job: &str, mt: &MultiTacticPlan, extra: u64) -> String {
        let cfg = &self.config;
        let words = [
            cfg.params.r.to_bits(),
            cfg.params.k as u64,
            fnv_str(&format!("{:?}", cfg.params.metric)),
            cfg.seed,
            extra,
        ]
        .into_iter()
        .chain(mt.allocation.iter().map(|&a| a as u64))
        .chain(mt.algorithms.iter().map(|a| fnv_str(a.name())));
        format!("{job} fp={:016x}", fingerprint_u64s(words))
    }

    /// The supporting-area single-job protocol (Section III).
    fn run_single_job(
        &self,
        store: &BlockStore<InputPoint>,
        mt: &MultiTacticPlan,
        router: Arc<dod_partition::Router>,
    ) -> Result<JobOutputs, DodError> {
        let cfg = &self.config;
        let mapper = DodMapper::new(router);
        let dim = mt.plan.domain().dim();
        let reducer = DodReducer::new(cfg.params, dim, Arc::new(mt.algorithms.clone()))
            .with_obs(cfg.obs.clone());
        let allocation = mt.allocation.clone();
        let partitioner = move |k: &u32, _n: usize| allocation[*k as usize];
        let ck = self.open_store("-detect", store.num_blocks(), self.job_tag("detect", mt, 0))?;
        let out = match &ck {
            Some(ck) => mapreduce::run_job_durable(
                &cfg.cluster,
                store,
                &mapper,
                &reducer,
                &partitioner,
                cfg.num_reducers,
                &cfg.obs,
                ck,
            )?,
            None => run_job_obs(
                &cfg.cluster,
                store,
                &mapper,
                &reducer,
                &partitioner,
                cfg.num_reducers,
                &cfg.obs,
            )?,
        };
        let diverted = diverted_count(out.outcome);
        let mut outliers = out.outputs;
        outliers.sort_unstable();
        let times = out.key_times;
        Ok((vec![out.metrics], outliers, times, diverted))
    }

    /// The Domain baseline's two-job protocol (Section VI-A).
    fn run_two_job(
        &self,
        store: &BlockStore<InputPoint>,
        mt: &MultiTacticPlan,
    ) -> Result<JobOutputs, DodError> {
        let cfg = &self.config;
        let dim = mt.plan.domain().dim();

        // Job 1: local detection, emitting candidates.
        let mapper = CandidateMapper::new(Arc::new(mt.plan.clone()));
        let reducer = CandidateReducer::with_plan(cfg.params, dim, Arc::new(mt.algorithms.clone()))
            .with_obs(cfg.obs.clone());
        let allocation = mt.allocation.clone();
        let partitioner = move |k: &u32, _n: usize| allocation[*k as usize];
        let ck1 = self.open_store(
            "-candidates",
            store.num_blocks(),
            self.job_tag("candidates", mt, 0),
        )?;
        let job1 = match &ck1 {
            Some(ck) => mapreduce::run_job_durable(
                &cfg.cluster,
                store,
                &mapper,
                &reducer,
                &partitioner,
                cfg.num_reducers,
                &cfg.obs,
                ck,
            )?,
            None => run_job_obs(
                &cfg.cluster,
                store,
                &mapper,
                &reducer,
                &partitioner,
                cfg.num_reducers,
                &cfg.obs,
            )?,
        };
        let mut diverted = diverted_count(job1.outcome);
        let candidates: Vec<Candidate> = job1.outputs;
        let partition_times = job1.key_times.clone();

        if candidates.is_empty() {
            return Ok((vec![job1.metrics], Vec::new(), partition_times, diverted));
        }

        // Job 2: global verification of the candidates.
        let index = Arc::new(CandidateIndex::build_with_metric(
            candidates,
            cfg.params.r,
            cfg.params.metric,
        ));
        let verify_mapper = VerifyMapper::new(Arc::clone(&index));
        let verify_reducer = VerifyReducer::new(cfg.params.k);
        let hash_partitioner = |k: &u32, n: usize| (*k as usize) % n;
        // The verify job's work depends on which candidates job 1
        // produced, so its fingerprint hashes the candidate ids: a
        // redrive that changes the candidate set invalidates stale
        // verify checkpoints instead of restoring them.
        let candidate_fp = fingerprint_u64s(index.candidates().iter().map(|c| c.id));
        let ck2 = self.open_store(
            "-verify",
            store.num_blocks(),
            self.job_tag("verify", mt, candidate_fp),
        )?;
        // Partial counts fold map-side (a Hadoop combiner), keeping the
        // second job's shuffle tiny.
        let job2 = match &ck2 {
            Some(ck) => mapreduce::run_job_with_combiner_durable(
                &cfg.cluster,
                store,
                &verify_mapper,
                &mapreduce::SumCombiner::new(),
                &verify_reducer,
                &hash_partitioner,
                cfg.num_reducers,
                &cfg.obs,
                ck,
            )?,
            None => mapreduce::run_job_with_combiner_obs(
                &cfg.cluster,
                store,
                &verify_mapper,
                &mapreduce::SumCombiner::new(),
                &verify_reducer,
                &hash_partitioner,
                cfg.num_reducers,
                &cfg.obs,
            )?,
        };
        diverted += diverted_count(job2.outcome);
        let cleared: HashSet<u32> = job2.outputs.into_iter().collect();
        let mut outliers: Vec<PointId> = index
            .candidates()
            .iter()
            .enumerate()
            .filter(|(i, _)| !cleared.contains(&(*i as u32)))
            .map(|(_, c)| c.id)
            .collect();
        outliers.sort_unstable();
        Ok((
            vec![job1.metrics, job2.metrics],
            outliers,
            partition_times,
            diverted,
        ))
    }
}

/// Dead-lettered task count of one job outcome.
fn diverted_count(outcome: JobOutcome) -> u64 {
    match outcome {
        JobOutcome::Complete => 0,
        JobOutcome::PartialWithDlq { diverted } => diverted as u64,
    }
}

/// FNV-1a over a string — stable words for the job fingerprint tag.
fn fnv_str(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_detect::{Detector, Reference};
    use dod_partition::{CDriven, DDriven, Domain, UniSpace};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn clustered_data(seed: u64, n: usize) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = PointSet::new(2).unwrap();
        for _ in 0..n {
            // Two clusters plus sparse noise.
            let roll: f64 = rng.gen();
            let (cx, cy, spread): (f64, f64, f64) = if roll < 0.45 {
                (10.0, 10.0, 1.5)
            } else if roll < 0.9 {
                (40.0, 35.0, 2.5)
            } else {
                (25.0, 25.0, 25.0)
            };
            pts.push(&[
                (cx + rng.gen_range(-spread..spread)).clamp(0.0, 50.0),
                (cy + rng.gen_range(-spread..spread)).clamp(0.0, 50.0),
            ])
            .unwrap();
        }
        pts
    }

    fn reference_outliers(data: &PointSet, params: OutlierParams) -> Vec<PointId> {
        Reference
            .detect(&dod_detect::Partition::standalone(data.clone()), params)
            .outliers
    }

    fn small_config(params: OutlierParams) -> DodConfig {
        DodConfig::builder(params)
            .sample_rate(1.0)
            .block_size(64)
            .num_reducers(4)
            .target_partitions(9)
            .build()
            .unwrap()
    }

    #[test]
    fn dmt_pipeline_matches_reference() {
        let data = clustered_data(1, 600);
        let params = OutlierParams::new(1.5, 4).unwrap();
        let runner = DodRunner::builder()
            .config(small_config(params))
            .multi_tactic()
            .build();
        let outcome = runner.run(&data).unwrap();
        assert_eq!(outcome.outliers, reference_outliers(&data, params));
        assert!(outcome.report.num_partitions >= 1);
        assert!(outcome.report.breakdown.total() > Duration::ZERO);
    }

    #[test]
    fn every_strategy_is_exact() {
        let data = clustered_data(2, 400);
        let params = OutlierParams::new(2.0, 3).unwrap();
        let expected = reference_outliers(&data, params);

        let strategies: Vec<Box<dyn Fn() -> DodRunner>> = vec![
            Box::new(move || {
                DodRunner::builder()
                    .config(small_config(params))
                    .strategy(UniSpace)
                    .fixed(AlgorithmKind::NestedLoop)
                    .build()
            }),
            Box::new(move || {
                DodRunner::builder()
                    .config(small_config(params))
                    .strategy(DDriven)
                    .fixed(AlgorithmKind::CellBased)
                    .build()
            }),
            Box::new(move || {
                DodRunner::builder()
                    .config(small_config(params))
                    .strategy(CDriven::new(AlgorithmKind::NestedLoop))
                    .multi_tactic()
                    .build()
            }),
            Box::new(move || {
                DodRunner::builder()
                    .config(small_config(params))
                    .strategy(Domain)
                    .fixed(AlgorithmKind::NestedLoop)
                    .build()
            }),
        ];
        for (i, make) in strategies.iter().enumerate() {
            let outcome = make().run(&data).unwrap();
            assert_eq!(outcome.outliers, expected, "strategy {i}");
        }
    }

    #[test]
    fn domain_baseline_runs_two_jobs_when_candidates_exist() {
        let data = clustered_data(3, 300);
        let params = OutlierParams::new(1.0, 6).unwrap();
        let runner = DodRunner::builder()
            .config(small_config(params))
            .strategy(Domain)
            .fixed(AlgorithmKind::NestedLoop)
            .build();
        let outcome = runner.run(&data).unwrap();
        assert_eq!(outcome.outliers, reference_outliers(&data, params));
        // With a 3x3 grid over clustered data there are always edge
        // candidates, so job 2 must have run.
        assert_eq!(outcome.report.jobs.len(), 2);
    }

    #[test]
    fn empty_input_is_empty_output() {
        let params = OutlierParams::new(1.0, 3).unwrap();
        let runner = DodRunner::builder().params(params).build();
        let outcome = runner.run(&PointSet::new(2).unwrap()).unwrap();
        assert!(outcome.outliers.is_empty());
        assert!(outcome.report.jobs.is_empty());
    }

    #[test]
    fn single_point_is_outlier() {
        let params = OutlierParams::new(1.0, 1).unwrap();
        let mut data = PointSet::new(2).unwrap();
        data.push(&[3.0, 4.0]).unwrap();
        let runner = DodRunner::builder().config(small_config(params)).build();
        let outcome = runner.run(&data).unwrap();
        assert_eq!(outcome.outliers, vec![0]);
    }

    #[test]
    fn report_accounts_every_partition() {
        let data = clustered_data(4, 500);
        let params = OutlierParams::new(1.5, 4).unwrap();
        let runner = DodRunner::builder()
            .config(small_config(params))
            .multi_tactic()
            .build();
        let outcome = runner.run(&data).unwrap();
        let total_algs: usize = outcome
            .report
            .algorithm_histogram
            .iter()
            .map(|(_, n)| n)
            .sum();
        assert_eq!(total_algs, outcome.report.num_partitions);
        assert_eq!(
            outcome.report.predicted_costs.len(),
            outcome.report.num_partitions
        );
        assert!(outcome.report.shuffle_bytes > 0);
    }

    #[test]
    fn multi_tactic_uses_multiple_algorithms_on_skewed_data() {
        // Three density regimes: a dense blob (Lemma 4.2 case 1 ->
        // Cell-Based), an intermediate-density block (case 3 ->
        // Nested-Loop wins), and a sparse background (case 2 ->
        // Cell-Based).
        let mut data = PointSet::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..3000 {
            data.push(&[rng.gen_range(0.0..3.0), rng.gen_range(0.0..3.0)])
                .unwrap();
        }
        for _ in 0..2000 {
            // Density ~2 points per unit area: the Corollary 4.3 middle.
            data.push(&[rng.gen_range(40.0..72.0), rng.gen_range(0.0..31.0)])
                .unwrap();
        }
        for _ in 0..300 {
            data.push(&[rng.gen_range(3.0..100.0), rng.gen_range(31.0..100.0)])
                .unwrap();
        }
        let params = OutlierParams::new(1.0, 4).unwrap();
        let config = small_config(params)
            .to_builder()
            .target_partitions(32)
            .build()
            .unwrap();
        // The paper-variant candidate set: the full-scan Cell-Based pays
        // Nested-Loop-like fallback costs, so the intermediate-density
        // block genuinely favors Nested-Loop and the plan mixes.
        let runner = DodRunner::builder()
            .config(config)
            .candidates(dod_detect::cost::PAPER_VARIANT_CANDIDATES.to_vec())
            .build();
        let outcome = runner.run(&data).unwrap();
        assert_eq!(outcome.outliers, reference_outliers(&data, params));
        assert!(
            outcome.report.algorithm_histogram.len() >= 2,
            "expected a mixed algorithm plan, got {:?}",
            outcome.report.algorithm_histogram
        );
    }

    #[test]
    #[should_panic]
    fn builder_without_params_panics() {
        let _ = DodRunner::builder().build();
    }

    #[test]
    fn three_dimensional_pipeline_is_exact() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut data = PointSet::new(3).unwrap();
        for _ in 0..300 {
            data.push(&[
                rng.gen_range(0.0..10.0),
                rng.gen_range(0.0..10.0),
                rng.gen_range(0.0..10.0),
            ])
            .unwrap();
        }
        let params = OutlierParams::new(1.5, 3).unwrap();
        let runner = DodRunner::builder()
            .config(small_config(params))
            .strategy(UniSpace)
            .multi_tactic()
            .build();
        let outcome = runner.run(&data).unwrap();
        assert_eq!(outcome.outliers, reference_outliers(&data, params));
    }
}

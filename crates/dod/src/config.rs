//! Pipeline configuration and its validating builder.
//!
//! [`DodConfig`] is constructed through [`DodConfig::builder`], which
//! checks the cross-field invariants the pipeline assumes (a usable
//! sampling rate, at least one reducer, at least as many partitions as
//! reducers) and reports violations as [`ConfigError`] instead of letting
//! them surface as confusing behaviour deep inside a run.
//!
//! The struct is `#[non_exhaustive]`: fields stay readable (and, for
//! tests that deliberately probe degenerate combinations, writable), but
//! downstream crates cannot construct it literally, so adding a field is
//! not a breaking change.

use dod_core::OutlierParams;
use dod_detect::CalibrationProfile;
use dod_obs::Obs;
use dod_partition::sample::DEFAULT_SAMPLE_RATE;
use dod_partition::AllocationSpec;
use mapreduce::ClusterConfig;
use std::path::PathBuf;

/// Where to persist job durability state (checkpoints + dead-letter
/// queue). Attaching one switches every MapReduce job the pipeline runs
/// to its durable variant: completed tasks are checkpointed under
/// `dir/<job_id>-<stage suffix>/` and an interrupted run resumes from
/// the last completed task instead of starting over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Root directory of the checkpoint store.
    pub dir: PathBuf,
    /// Operator-chosen job name; the pipeline appends a per-job suffix
    /// (`-detect`, `-candidates`, `-verify`) for each MapReduce job it
    /// launches.
    pub job_id: String,
}

/// A [`DodConfig::builder`] validation failure.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `sample_rate` must lie in `(0, 1]`: the preprocessing job needs a
    /// non-empty sample and cannot up-sample.
    SampleRate(f64),
    /// `num_reducers` must be at least 1: the detection job has to run
    /// its reduce phase somewhere.
    NoReducers,
    /// `target_partitions` must be at least `num_reducers`, otherwise
    /// some reducers can never receive work and the balance objective of
    /// the allocation phase is vacuous.
    TooFewPartitions {
        /// The requested partition count `m`.
        target_partitions: usize,
        /// The requested reducer count.
        num_reducers: usize,
    },
    /// The outlier radius `r` must be positive and finite.
    NonPositiveRadius(f64),
    /// `block_size` must be at least 1 input item per block.
    ZeroBlockSize,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::SampleRate(v) => {
                write!(f, "sample_rate must be in (0, 1], got {v}")
            }
            ConfigError::NoReducers => write!(f, "num_reducers must be at least 1"),
            ConfigError::TooFewPartitions {
                target_partitions,
                num_reducers,
            } => write!(
                f,
                "target_partitions ({target_partitions}) must be >= num_reducers ({num_reducers})"
            ),
            ConfigError::NonPositiveRadius(r) => {
                write!(f, "outlier radius r must be positive and finite, got {r}")
            }
            ConfigError::ZeroBlockSize => write!(f, "block_size must be at least 1"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Pipeline configuration. Construct with [`DodConfig::builder`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct DodConfig {
    /// Outlier parameters (`r`, `k`).
    pub params: OutlierParams,
    /// Logical cluster topology.
    pub cluster: ClusterConfig,
    /// Number of reduce tasks.
    pub num_reducers: usize,
    /// Desired number of partitions `m` (≥ reducers for balance slack).
    pub target_partitions: usize,
    /// Sampling rate Υ of the preprocessing job.
    pub sample_rate: f64,
    /// Input items per HDFS-like block (map-task granularity).
    pub block_size: usize,
    /// Block replication factor (storage accounting only).
    pub replication: usize,
    /// Seed for sampling and randomized detectors.
    pub seed: u64,
    /// Partition→reducer allocation override. `None` uses the strategy's
    /// paper-faithful default (round-robin for Domain/uniSpace,
    /// cardinality-balanced for DDriven, cost-balanced for CDriven/DMT).
    pub allocation: Option<AllocationSpec>,
    /// Use the paper's per-partition average-density cost models
    /// (Lemmas 4.1/4.2) instead of the default locality-aware estimator
    /// (see `dod_partition::estimate`). Kept for the cost-model ablation.
    pub paper_cost_model: bool,
    /// Observability sink for the run: stage spans, plan decisions,
    /// MapReduce task spans, and per-partition detector counters flow
    /// through it. Defaults to the disabled handle (zero overhead).
    pub obs: Obs,
    /// Measured cost-model calibration. The unit profile (the default)
    /// reproduces the legacy unit-op cost model bit for bit; a profile
    /// loaded from `bench calibrate` output reweighs per-pair vs
    /// structural work to match the kernel layer's measured throughput.
    pub calibration: CalibrationProfile,
    /// Durability root for checkpoint/resume and the dead-letter queue.
    /// `None` (the default) runs every job in-memory only.
    pub checkpoint: Option<CheckpointSpec>,
}

impl DodConfig {
    /// The default configuration for the given parameters.
    ///
    /// Cluster-shaped values are *derived* from [`ClusterConfig::default`]
    /// rather than fixed constants: `num_reducers` is the cluster's
    /// reduce-lane count, and `target_partitions` is four times that (the
    /// `m > n` slack Section V's packing needs). Sampling uses the
    /// paper's default rate ([`DEFAULT_SAMPLE_RATE`]).
    pub fn new(params: OutlierParams) -> Self {
        let cluster = ClusterConfig::default();
        let lanes = cluster.reduce_lanes();
        DodConfig {
            params,
            cluster,
            num_reducers: lanes,
            target_partitions: lanes * 4,
            sample_rate: DEFAULT_SAMPLE_RATE,
            block_size: 64 * 1024,
            replication: 3,
            seed: 0xD0D_5EED,
            allocation: None,
            paper_cost_model: false,
            obs: Obs::null(),
            calibration: CalibrationProfile::unit(),
            checkpoint: None,
        }
    }

    /// Starts building a configuration for the given parameters.
    pub fn builder(params: OutlierParams) -> DodConfigBuilder {
        DodConfigBuilder {
            params,
            cluster: None,
            num_reducers: None,
            target_partitions: None,
            sample_rate: DEFAULT_SAMPLE_RATE,
            block_size: 64 * 1024,
            replication: 3,
            seed: 0xD0D_5EED,
            allocation: None,
            paper_cost_model: false,
            obs: Obs::null(),
            calibration: CalibrationProfile::unit(),
            checkpoint: None,
        }
    }

    /// Re-opens this configuration as a builder, for deriving a variant
    /// with a few fields changed.
    pub fn to_builder(&self) -> DodConfigBuilder {
        DodConfigBuilder {
            params: self.params,
            cluster: Some(self.cluster),
            num_reducers: Some(self.num_reducers),
            target_partitions: Some(self.target_partitions),
            sample_rate: self.sample_rate,
            block_size: self.block_size,
            replication: self.replication,
            seed: self.seed,
            allocation: self.allocation,
            paper_cost_model: self.paper_cost_model,
            obs: self.obs.clone(),
            calibration: self.calibration.clone(),
            checkpoint: self.checkpoint.clone(),
        }
    }
}

/// Validating builder for [`DodConfig`].
///
/// Unset cluster-shaped values are derived at [`DodConfigBuilder::build`]
/// time: `num_reducers` defaults to the cluster's reduce-lane count and
/// `target_partitions` to four times `num_reducers`.
#[derive(Debug, Clone)]
pub struct DodConfigBuilder {
    params: OutlierParams,
    cluster: Option<ClusterConfig>,
    num_reducers: Option<usize>,
    target_partitions: Option<usize>,
    sample_rate: f64,
    block_size: usize,
    replication: usize,
    seed: u64,
    allocation: Option<AllocationSpec>,
    paper_cost_model: bool,
    obs: Obs,
    calibration: CalibrationProfile,
    checkpoint: Option<CheckpointSpec>,
}

impl DodConfigBuilder {
    /// Sets the logical cluster topology.
    pub fn cluster(mut self, cluster: ClusterConfig) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Sets the number of reduce tasks.
    pub fn num_reducers(mut self, n: usize) -> Self {
        self.num_reducers = Some(n);
        self
    }

    /// Sets the desired partition count `m`.
    pub fn target_partitions(mut self, m: usize) -> Self {
        self.target_partitions = Some(m);
        self
    }

    /// Sets the preprocessing sampling rate Υ.
    pub fn sample_rate(mut self, rate: f64) -> Self {
        self.sample_rate = rate;
        self
    }

    /// Sets the input items per block (map-task granularity).
    pub fn block_size(mut self, items: usize) -> Self {
        self.block_size = items;
        self
    }

    /// Sets the block replication factor.
    pub fn replication(mut self, factor: usize) -> Self {
        self.replication = factor;
        self
    }

    /// Sets the seed for sampling and randomized detectors.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the partition→reducer allocation policy.
    pub fn allocation(mut self, spec: AllocationSpec) -> Self {
        self.allocation = Some(spec);
        self
    }

    /// Switches to the paper's average-density cost models.
    pub fn paper_cost_model(mut self, enabled: bool) -> Self {
        self.paper_cost_model = enabled;
        self
    }

    /// Attaches an observability sink.
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Installs a measured cost-model calibration profile.
    pub fn calibration(mut self, profile: CalibrationProfile) -> Self {
        self.calibration = profile;
        self
    }

    /// Enables durable jobs: checkpoints and the dead-letter queue are
    /// persisted under `dir`, keyed by `job_id` plus a per-job suffix.
    pub fn checkpoint(mut self, dir: impl Into<PathBuf>, job_id: impl Into<String>) -> Self {
        self.checkpoint = Some(CheckpointSpec {
            dir: dir.into(),
            job_id: job_id.into(),
        });
        self
    }

    /// Validates and finalizes the configuration.
    ///
    /// # Errors
    /// Returns a [`ConfigError`] when `sample_rate ∉ (0, 1]`,
    /// `num_reducers == 0`, `target_partitions < num_reducers`,
    /// `block_size == 0`, or the outlier radius is not positive and
    /// finite.
    pub fn build(self) -> Result<DodConfig, ConfigError> {
        if !(self.params.r.is_finite() && self.params.r > 0.0) {
            return Err(ConfigError::NonPositiveRadius(self.params.r));
        }
        if !(self.sample_rate.is_finite() && self.sample_rate > 0.0 && self.sample_rate <= 1.0) {
            return Err(ConfigError::SampleRate(self.sample_rate));
        }
        if self.block_size == 0 {
            return Err(ConfigError::ZeroBlockSize);
        }
        let cluster = self.cluster.unwrap_or_default();
        let num_reducers = self.num_reducers.unwrap_or_else(|| cluster.reduce_lanes());
        if num_reducers == 0 {
            return Err(ConfigError::NoReducers);
        }
        let target_partitions = self.target_partitions.unwrap_or(num_reducers * 4);
        if target_partitions < num_reducers {
            return Err(ConfigError::TooFewPartitions {
                target_partitions,
                num_reducers,
            });
        }
        Ok(DodConfig {
            params: self.params,
            cluster,
            num_reducers,
            target_partitions,
            sample_rate: self.sample_rate,
            block_size: self.block_size,
            replication: self.replication,
            seed: self.seed,
            allocation: self.allocation,
            paper_cost_model: self.paper_cost_model,
            obs: self.obs,
            calibration: self.calibration,
            checkpoint: self.checkpoint,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> OutlierParams {
        OutlierParams::new(1.0, 3).unwrap()
    }

    #[test]
    fn builder_defaults_match_new() {
        let built = DodConfig::builder(params()).build().unwrap();
        let legacy = DodConfig::new(params());
        assert_eq!(built.num_reducers, legacy.num_reducers);
        assert_eq!(built.target_partitions, legacy.target_partitions);
        assert_eq!(built.sample_rate, legacy.sample_rate);
        assert_eq!(built.block_size, legacy.block_size);
        assert_eq!(built.replication, legacy.replication);
        assert_eq!(built.seed, legacy.seed);
    }

    #[test]
    fn sample_rate_bounds_enforced() {
        for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            let err = DodConfig::builder(params())
                .sample_rate(bad)
                .build()
                .unwrap_err();
            assert!(matches!(err, ConfigError::SampleRate(_)), "rate {bad}");
        }
        assert!(DodConfig::builder(params())
            .sample_rate(1.0)
            .build()
            .is_ok());
    }

    #[test]
    fn zero_reducers_rejected() {
        let err = DodConfig::builder(params())
            .num_reducers(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::NoReducers);
    }

    #[test]
    fn too_few_partitions_rejected() {
        let err = DodConfig::builder(params())
            .num_reducers(8)
            .target_partitions(4)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::TooFewPartitions {
                target_partitions: 4,
                num_reducers: 8
            }
        );
    }

    #[test]
    fn zero_block_size_rejected() {
        let err = DodConfig::builder(params())
            .block_size(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroBlockSize);
    }

    #[test]
    fn partitions_default_tracks_explicit_reducers() {
        let cfg = DodConfig::builder(params())
            .num_reducers(5)
            .build()
            .unwrap();
        assert_eq!(cfg.target_partitions, 20);
    }

    #[test]
    fn to_builder_round_trips() {
        let cfg = DodConfig::builder(params())
            .num_reducers(3)
            .target_partitions(11)
            .seed(42)
            .build()
            .unwrap();
        let copy = cfg.to_builder().build().unwrap();
        assert_eq!(copy.num_reducers, 3);
        assert_eq!(copy.target_partitions, 11);
        assert_eq!(copy.seed, 42);
        let derived = cfg.to_builder().seed(7).build().unwrap();
        assert_eq!(derived.seed, 7);
        assert_eq!(derived.target_partitions, 11);
    }

    #[test]
    fn errors_display_the_offending_values() {
        let msg = ConfigError::TooFewPartitions {
            target_partitions: 2,
            num_reducers: 9,
        }
        .to_string();
        assert!(msg.contains('2') && msg.contains('9'));
        assert!(ConfigError::SampleRate(7.0).to_string().contains("7"));
    }
}

//! DOD — distributed distance-based outlier detection.
//!
//! This crate assembles the full system of the paper on top of the
//! workspace's substrates:
//!
//! * [`framework`] — the single-job DOD framework of Section III: mappers
//!   route each point to its core partition plus every partition it
//!   supports (Definition 3.3); reducers run the per-partition detection
//!   algorithm in total isolation (Lemma 3.1);
//! * [`two_job`] — the Domain baseline of Section VI-A, which skips
//!   supporting areas and pays a second MapReduce job to verify candidate
//!   outliers at partition edges;
//! * [`pipeline`] — the end-to-end runner: preprocessing job (sampling →
//!   plan generation, Figure 6) followed by the detection job, with the
//!   per-stage breakdown the evaluation reports.
//!
//! # Quick start
//!
//! ```
//! use dod::prelude::*;
//!
//! // A tight cluster plus one isolated point.
//! let mut pts = vec![(0.0, 0.0), (0.2, 0.1), (0.1, 0.2), (0.2, 0.2)];
//! pts.push((50.0, 50.0));
//! let data = dod_core::PointSet::from_xy(&pts);
//!
//! let runner = DodRunner::builder()
//!     .params(OutlierParams::new(1.0, 2).unwrap())
//!     .multi_tactic()
//!     .build();
//! let outcome = runner.run(&data).unwrap();
//! assert_eq!(outcome.outliers, vec![4]);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod config;
pub mod extensions;
pub mod framework;
pub mod pipeline;
pub mod two_job;

pub use config::{CheckpointSpec, ConfigError, DodConfig, DodConfigBuilder};
pub use framework::TaggedPoint;
pub use pipeline::{
    DetectionMode, DodError, DodOutcome, DodRunner, DodRunnerBuilder, Preprocessed, RunReport,
    StageBreakdown,
};

/// The crate's single error surface: every fallible public operation
/// reports a [`pipeline::DodError`], with the underlying configuration,
/// geometry, or MapReduce failure reachable via
/// [`std::error::Error::source`].
pub use pipeline::DodError as Error;

/// Convenient re-exports for typical callers.
pub mod prelude {
    pub use crate::config::{ConfigError, DodConfig, DodConfigBuilder};
    pub use crate::pipeline::{DetectionMode, DodOutcome, DodRunner, RunReport};
    pub use dod_core::{OutlierParams, PointSet};
    pub use dod_detect::cost::AlgorithmKind;
    pub use dod_partition::{
        AllocationPolicy, CDriven, DDriven, Dmt, Domain, PartitionStrategy, UniSpace,
    };
    pub use mapreduce::{ClusterConfig, FaultPlan};
}

//! The two-job Domain baseline (Section VI-A).
//!
//! Without supporting areas, a point classified as an outlier inside its
//! own partition may still have unseen neighbors in adjacent partitions.
//! The baseline therefore runs:
//!
//! 1. **Candidate job** — grid partitioning without replication; each
//!    reducer detects locally and emits the local outliers as
//!    *candidates*;
//! 2. **Verification job** — every mapper matches its input block against
//!    the broadcast candidate list and emits partial neighbor counts;
//!    a reducer sums them, and candidates that reach `k` global neighbors
//!    are cleared.
//!
//! This is exactly the extra cost ("prohibitive costs involved in reading,
//! writing, and re-distribution of the data over a series of separate
//! jobs") that motivates the single-pass framework.

use crate::framework::{DodReducer, InputPoint, TaggedPoint};
use dod_core::{GridSpec, OutlierParams, PointId, Rect};
use dod_detect::cost::AlgorithmKind;
use dod_partition::PartitionPlan;
use mapreduce::checkpoint::Json;
use mapreduce::{Durable, EstimateSize, Mapper, Reducer};
use std::sync::Arc;

/// A locally-detected outlier awaiting global verification.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Stable id of the point.
    pub id: PointId,
    /// Coordinates.
    pub coords: Vec<f64>,
}

impl EstimateSize for Candidate {
    fn estimated_bytes(&self) -> usize {
        8 + 8 * self.coords.len()
    }
}

// Checkpointed baseline jobs persist candidates as `[id, coords]`.
impl Durable for Candidate {
    fn encode(&self, out: &mut String) {
        out.push('[');
        self.id.encode(out);
        out.push(',');
        self.coords.encode(out);
        out.push(']');
    }
    fn decode(v: &Json) -> Option<Self> {
        let (id, coords) = <(PointId, Vec<f64>)>::decode(v)?;
        Some(Candidate { id, coords })
    }
}

/// Job-1 mapper: routes each point to its core partition only (no
/// supporting area).
pub struct CandidateMapper {
    plan: Arc<PartitionPlan>,
}

impl CandidateMapper {
    /// Creates the mapper over the (grid) partition plan.
    pub fn new(plan: Arc<PartitionPlan>) -> Self {
        CandidateMapper { plan }
    }
}

impl Mapper for CandidateMapper {
    type In = InputPoint;
    type K = u32;
    type V = TaggedPoint;

    fn map(&self, item: &InputPoint, emit: &mut dyn FnMut(u32, TaggedPoint)) {
        let (id, coords) = item;
        emit(
            self.plan.locate(coords),
            TaggedPoint {
                support: false,
                id: *id,
                coords: coords.clone(),
            },
        );
    }
}

/// Job-1 reducer: detects locally and emits the local outliers as
/// candidates.
pub struct CandidateReducer {
    inner: DodReducer,
    dim: usize,
}

impl CandidateReducer {
    /// Creates the reducer; every partition uses `kind` (the baseline is
    /// monolithic).
    pub fn new(params: OutlierParams, dim: usize, kind: AlgorithmKind, partitions: usize) -> Self {
        Self::with_plan(params, dim, Arc::new(vec![kind; partitions]))
    }

    /// Creates the reducer from an explicit per-partition algorithm plan.
    pub fn with_plan(
        params: OutlierParams,
        dim: usize,
        algorithms: Arc<Vec<AlgorithmKind>>,
    ) -> Self {
        CandidateReducer {
            inner: DodReducer::new(params, dim, algorithms),
            dim,
        }
    }

    /// Attaches an observability handle (see [`DodReducer::with_obs`]).
    #[must_use]
    pub fn with_obs(mut self, obs: dod_obs::Obs) -> Self {
        self.inner = self.inner.with_obs(obs);
        self
    }
}

impl Reducer for CandidateReducer {
    type K = u32;
    type V = TaggedPoint;
    type Out = Candidate;

    fn reduce(&self, key: &u32, values: Vec<TaggedPoint>, emit: &mut dyn FnMut(Candidate)) {
        debug_assert!(
            values.iter().all(|v| !v.support),
            "job 1 has no support records"
        );
        debug_assert_eq!(
            self.dim,
            values.first().map_or(self.dim, |v| v.coords.len())
        );
        let partition = std::sync::Arc::new(self.inner.build_partition(values));
        let detection = self.inner.detect(*key, std::sync::Arc::clone(&partition));
        // Emit coordinates along with ids so job 2 can count neighbors.
        let mut by_id: std::collections::HashMap<PointId, &[f64]> = Default::default();
        for (i, &id) in partition.core_ids().iter().enumerate() {
            by_id.insert(id, partition.core().point(i));
        }
        for id in detection.outliers {
            emit(Candidate {
                id,
                coords: by_id[&id].to_vec(),
            });
        }
    }
}

/// Spatial index over the broadcast candidate list, shared by all job-2
/// map tasks.
pub struct CandidateIndex {
    candidates: Vec<Candidate>,
    grid: Option<GridSpec>,
    buckets: Vec<Vec<u32>>,
    r: f64,
    metric: dod_core::Metric,
}

impl CandidateIndex {
    /// Builds the index with cell side ≈ `r` under the Euclidean metric.
    pub fn build(candidates: Vec<Candidate>, r: f64) -> Self {
        Self::build_with_metric(candidates, r, dod_core::Metric::Euclidean)
    }

    /// Builds the index for an arbitrary metric.
    pub fn build_with_metric(candidates: Vec<Candidate>, r: f64, metric: dod_core::Metric) -> Self {
        if candidates.is_empty() {
            return CandidateIndex {
                candidates,
                grid: None,
                buckets: Vec::new(),
                r,
                metric,
            };
        }
        let dim = candidates[0].coords.len();
        let bounds = Rect::bounding(candidates.iter().map(|c| c.coords.as_slice()), dim)
            .expect("non-empty candidates");
        let cells: Vec<usize> = (0..dim)
            .map(|i| {
                let extent = bounds.extent(i);
                if extent == 0.0 {
                    1
                } else {
                    ((extent / r).ceil() as usize).clamp(1, 1024)
                }
            })
            .collect();
        let grid = GridSpec::new(bounds, cells).expect("valid candidate grid");
        let mut buckets = vec![Vec::new(); grid.num_cells()];
        for (i, c) in candidates.iter().enumerate() {
            buckets[grid.cell_of(&c.coords)].push(i as u32);
        }
        CandidateIndex {
            candidates,
            grid: Some(grid),
            buckets,
            r,
            metric,
        }
    }

    /// Number of indexed candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The candidate list, in index order.
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Indices of candidates within `r` of `x`, excluding the candidate
    /// with id `exclude_id` (the point itself).
    pub fn neighbors_of(&self, x: &[f64], exclude_id: PointId) -> Vec<u32> {
        let Some(grid) = &self.grid else {
            return Vec::new();
        };
        let ball = Rect::new(
            x.iter().map(|v| v - self.r).collect(),
            x.iter().map(|v| v + self.r).collect(),
        )
        .expect("finite coordinates");
        let mut out = Vec::new();
        for cell in grid.cells_intersecting(&ball) {
            for &ci in &self.buckets[cell] {
                let c = &self.candidates[ci as usize];
                if c.id == exclude_id {
                    continue;
                }
                if self.metric.within(x, &c.coords, self.r) {
                    out.push(ci);
                }
            }
        }
        out
    }
}

/// Job-2 mapper: emits `(candidate index, 1)` for every (point, nearby
/// candidate) pair.
pub struct VerifyMapper {
    index: Arc<CandidateIndex>,
}

impl VerifyMapper {
    /// Creates the mapper over the broadcast candidate index.
    pub fn new(index: Arc<CandidateIndex>) -> Self {
        VerifyMapper { index }
    }
}

impl Mapper for VerifyMapper {
    type In = InputPoint;
    type K = u32;
    type V = u32;

    fn map(&self, item: &InputPoint, emit: &mut dyn FnMut(u32, u32)) {
        let (id, coords) = item;
        for ci in self.index.neighbors_of(coords, *id) {
            emit(ci, 1);
        }
    }
}

/// Job-2 reducer: emits the candidate index if its global neighbor count
/// reaches `k` (candidate cleared — an inlier after all).
pub struct VerifyReducer {
    k: usize,
}

impl VerifyReducer {
    /// Creates the reducer for neighbor-count threshold `k`.
    pub fn new(k: usize) -> Self {
        VerifyReducer { k }
    }
}

impl Reducer for VerifyReducer {
    type K = u32;
    type V = u32;
    type Out = u32;

    fn reduce(&self, key: &u32, values: Vec<u32>, emit: &mut dyn FnMut(u32)) {
        let total: u64 = values.iter().map(|&v| v as u64).sum();
        if total >= self.k as u64 {
            emit(*key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_index_finds_neighbors() {
        let cands = vec![
            Candidate {
                id: 0,
                coords: vec![0.0, 0.0],
            },
            Candidate {
                id: 1,
                coords: vec![5.0, 5.0],
            },
        ];
        let idx = CandidateIndex::build(cands, 1.0);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.neighbors_of(&[0.5, 0.0], 99), vec![0]);
        assert!(idx.neighbors_of(&[2.5, 2.5], 99).is_empty());
    }

    #[test]
    fn candidate_index_excludes_self() {
        let cands = vec![Candidate {
            id: 7,
            coords: vec![1.0, 1.0],
        }];
        let idx = CandidateIndex::build(cands, 1.0);
        assert!(idx.neighbors_of(&[1.0, 1.0], 7).is_empty());
        assert_eq!(idx.neighbors_of(&[1.0, 1.0], 8), vec![0]);
    }

    #[test]
    fn empty_candidate_index() {
        let idx = CandidateIndex::build(vec![], 1.0);
        assert!(idx.is_empty());
        assert!(idx.neighbors_of(&[0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn verify_reducer_thresholds_at_k() {
        let red = VerifyReducer::new(3);
        let mut out = Vec::new();
        red.reduce(&5, vec![1, 1], &mut |o| out.push(o));
        assert!(out.is_empty());
        red.reduce(&5, vec![1, 1, 1], &mut |o| out.push(o));
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn verify_mapper_emits_counts() {
        let idx = Arc::new(CandidateIndex::build(
            vec![Candidate {
                id: 0,
                coords: vec![0.0, 0.0],
            }],
            1.0,
        ));
        let mapper = VerifyMapper::new(idx);
        let mut out = Vec::new();
        mapper.map(&(42, vec![0.5, 0.5]), &mut |k, v| out.push((k, v)));
        assert_eq!(out, vec![(0, 1)]);
        out.clear();
        mapper.map(&(43, vec![3.0, 3.0]), &mut |k, v| out.push((k, v)));
        assert!(out.is_empty());
    }

    #[test]
    fn degenerate_candidates_all_identical() {
        let cands: Vec<Candidate> = (0..5)
            .map(|i| Candidate {
                id: i,
                coords: vec![2.0, 2.0],
            })
            .collect();
        let idx = CandidateIndex::build(cands, 0.5);
        // A probe at the same spot sees all 5 except the excluded id.
        assert_eq!(idx.neighbors_of(&[2.0, 2.0], 3).len(), 4);
    }
}

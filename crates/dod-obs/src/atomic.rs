//! Atomic file writes: temp file + fsync + rename.
//!
//! Every JSON artifact the workspace persists (checkpoints, dead-letter
//! queues, bench reports, SVG renders) goes through [`write_atomic`] so a
//! reader can never observe a half-written file: the bytes land in a
//! sibling temp file, are flushed to stable storage, and only then are
//! renamed over the destination. Rename within a directory is atomic on
//! POSIX, so the destination either holds the old contents or the new
//! ones, never a torn mix.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counter so concurrent writers in one process never collide
/// on a temp-file name even when targeting the same destination.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// `fsync`, then rename over the destination. Best-effort fsync of the
/// parent directory afterwards so the rename itself survives a crash.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("atomic write target has no file name: {}", path.display()),
        )
    })?;
    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp_name = format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        seq
    );
    let tmp_path = match dir {
        Some(d) => d.join(&tmp_name),
        None => Path::new(&tmp_name).to_path_buf(),
    };
    let result = (|| {
        let mut f = File::create(&tmp_path)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp_path, path)?;
        // The rename is durable only once the directory entry is flushed;
        // failure here is tolerable (the file contents are already safe).
        if let Some(d) = dir {
            if let Ok(dh) = File::open(d) {
                let _ = dh.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp_path);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dod-obs-atomic-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn writes_contents_and_overwrites() {
        let path = temp_path("basic.json");
        write_atomic(&path, b"{\"a\":1}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"a\":1}");
        write_atomic(&path, b"{\"a\":2}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"a\":2}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn leaves_no_temp_files_behind() {
        let dir = temp_path("tmpdir");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");
        write_atomic(&path, b"payload").unwrap();
        let extra: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name() != "artifact.json")
            .collect();
        assert!(extra.is_empty(), "stray files: {extra:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_path_without_file_name() {
        assert!(write_atomic(Path::new("/"), b"x").is_err());
    }
}

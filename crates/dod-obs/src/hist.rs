//! Mergeable log-linear (HDR-style) histograms.
//!
//! Buckets are laid out log-linearly: each power-of-two octave of the
//! positive reals is split into [`SUBBUCKETS`] equal-width subbuckets,
//! indexed directly from the value's IEEE-754 exponent and the top
//! mantissa bits — no search, no configuration. With 16 subbuckets per
//! octave the relative quantile error is bounded by `1/32` (~3.1%),
//! which is plenty for latency percentiles. Zero, negative, and
//! non-finite samples land in a dedicated underflow bucket; values
//! outside the covered exponent range saturate into the edge buckets
//! while `min`/`max` keep the true extremes.
//!
//! The layout is fixed, so histograms recorded independently (one per
//! worker, one per process) merge by bucket-wise addition — the property
//! that makes percentiles aggregatable where raw p99s are not.

/// Subbuckets per power-of-two octave (a power of two).
pub const SUBBUCKETS: usize = 16;
const SUB_BITS: u32 = SUBBUCKETS.trailing_zeros();

/// Smallest covered binary exponent: values below `2^MIN_EXP` (~9e-13)
/// saturate into the first bucket.
const MIN_EXP: i32 = -40;

/// Largest covered binary exponent: values at or above `2^(MAX_EXP+1)`
/// (~1.8e19, beyond `u64::MAX`) saturate into the last bucket.
const MAX_EXP: i32 = 63;

const OCTAVES: usize = (MAX_EXP - MIN_EXP + 1) as usize;

/// Total buckets: one underflow bucket (zero/negative/non-finite) plus
/// the log-linear grid.
const BUCKETS: usize = 1 + OCTAVES * SUBBUCKETS;

/// A mergeable log-linear histogram of `f64` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        if value.is_finite() {
            self.sum += value;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
    }

    /// Adds every sample of `other` into `self` (bucket-wise; exact).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all finite samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest finite sample (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.min.is_finite() {
            self.min
        } else {
            f64::NAN
        }
    }

    /// Largest finite sample (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.max.is_finite() {
            self.max
        } else {
            f64::NAN
        }
    }

    /// Mean of all finite samples (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`, estimated from the bucket
    /// containing the `ceil(q·count)`-th sample and clamped into the
    /// observed `[min, max]` range. NaN when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let mid = bucket_midpoint(i);
                if self.min.is_finite() {
                    return mid.clamp(self.min, self.max);
                }
                return mid;
            }
        }
        self.max()
    }

    /// A point-in-time percentile snapshot.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }
}

/// Percentile snapshot of a [`Histogram`] ([`Histogram::summary`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all finite samples.
    pub sum: f64,
    /// Smallest finite sample (NaN when empty).
    pub min: f64,
    /// Largest finite sample (NaN when empty).
    pub max: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

/// Maps a sample to its bucket, straight off the IEEE-754 bits.
fn bucket_index(value: f64) -> usize {
    if value.is_nan() || value <= 0.0 {
        return 0; // zero, negative, NaN, -inf
    }
    if value.is_infinite() {
        return BUCKETS - 1; // +inf saturates into the top bucket
    }
    let bits = value.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    if exp < MIN_EXP {
        return 1;
    }
    if exp > MAX_EXP {
        return BUCKETS - 1;
    }
    let sub = ((bits >> (52 - SUB_BITS)) & (SUBBUCKETS as u64 - 1)) as usize;
    1 + (exp - MIN_EXP) as usize * SUBBUCKETS + sub
}

/// Representative value (midpoint) of a bucket.
fn bucket_midpoint(index: usize) -> f64 {
    if index == 0 {
        return 0.0;
    }
    let linear = index - 1;
    let exp = MIN_EXP + (linear / SUBBUCKETS) as i32;
    let sub = (linear % SUBBUCKETS) as f64;
    let base = (exp as f64).exp2();
    base * (1.0 + (sub + 0.5) / SUBBUCKETS as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_nan() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert!(h.quantile(0.5).is_nan());
        assert!(h.min().is_nan());
        assert!(h.mean().is_nan());
        assert_eq!(h.summary().count, 0);
    }

    #[test]
    fn quantiles_are_within_relative_error() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 10_000);
        for (q, expected) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = h.quantile(q);
            let rel = (got - expected).abs() / expected;
            assert!(rel < 0.05, "q{q}: got {got}, expected ~{expected}");
        }
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 10_000.0);
        assert!((h.mean() - 5_000.5).abs() < 1.0);
    }

    #[test]
    fn quantiles_clamp_to_observed_range() {
        let mut h = Histogram::new();
        h.record(42.0);
        for q in [0.0, 0.5, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 42.0);
        }
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 0..1_000 {
            let v = (i as f64) * 0.37 + 0.001;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.counts, whole.counts);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for q in [0.5, 0.95, 0.99, 0.999] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
        // Sums differ only by floating-point addition order.
        assert!((a.sum() - whole.sum()).abs() < 1e-6 * whole.sum().abs());
    }

    #[test]
    fn pathological_samples_are_absorbed() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        h.record(1e-300); // below MIN_EXP: saturates low
        h.record(1e300); // above MAX_EXP: saturates high
        h.record(1.0);
        assert_eq!(h.count(), 8);
        // Finite extremes only.
        assert_eq!(h.min(), -5.0);
        assert_eq!(h.max(), 1e300);
        // Quantiles stay finite.
        assert!(h.quantile(0.5).is_finite());
    }

    #[test]
    fn nanosecond_scale_latencies_resolve() {
        let mut h = Histogram::new();
        // 1µs, 1ms, 1s in seconds.
        for _ in 0..98 {
            h.record(1e-6);
        }
        h.record(1e-3);
        h.record(1.0);
        let p50 = h.quantile(0.5);
        assert!((p50 - 1e-6).abs() / 1e-6 < 0.05, "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((p99 - 1e-3).abs() / 1e-3 < 0.05, "p99 = {p99}");
    }
}

//! Live metrics aggregation: events in, counters and histograms out.
//!
//! Where [`crate::MemoryRecorder`] keeps every raw event (unbounded, for
//! tests), the [`MetricsRecorder`] folds the stream into fixed-size
//! aggregates a long-running server can hold forever:
//!
//! * counters and marks → per-series monotonic totals;
//! * spans → a [`Histogram`] of durations **in seconds**;
//! * observations → a [`Histogram`] of the raw sampled values.
//!
//! Series are keyed by the event name plus its **string-valued** labels
//! only. Numeric labels (`request`, `items`, `partition`, `epoch`, …)
//! are identifiers or measurements, not dimensions — folding them into
//! the key would mint one series per request and grow without bound.

use std::cmp::Ordering;
use std::sync::Mutex;

use crate::event::{Event, EventKind, Value};
use crate::hist::{Histogram, HistogramSummary};
use crate::recorder::Recorder;
use crate::sync::lock_recover;

/// One aggregated series identity: name plus sorted string labels.
pub type SeriesKey = (String, Vec<(String, String)>);

/// Series tables are `Vec`s kept sorted by key: the hot path probes
/// them by binary search with a **borrowed** key (the event's name and
/// a stack-allocated view of its string labels), so recording into an
/// existing series allocates nothing. Inserts shift the tail, but the
/// series set is tiny and fixed after warm-up.
#[derive(Default)]
struct MetricsState {
    counters: Vec<(SeriesKey, u64)>,
    spans: Vec<(SeriesKey, Histogram)>,
    observes: Vec<(SeriesKey, Histogram)>,
}

/// A recorder that aggregates events into counters and histograms.
#[derive(Default)]
pub struct MetricsRecorder {
    state: Mutex<MetricsState>,
}

/// A point-in-time copy of every aggregated series
/// ([`MetricsRecorder::snapshot`]), sorted by series key.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter totals (counters and marks; a mark counts 1).
    pub counters: Vec<(SeriesKey, u64)>,
    /// Span duration summaries, in seconds.
    pub spans: Vec<(SeriesKey, HistogramSummary)>,
    /// Observation summaries, in the unit the caller observed.
    pub observes: Vec<(SeriesKey, HistogramSummary)>,
}

/// Calls `f` with the event's string labels, sorted, without heap
/// allocation for the common label counts (falls back to a `Vec` past
/// eight string labels).
fn with_sorted_string_labels<R>(event: &Event, f: impl FnOnce(&[(&str, &str)]) -> R) -> R {
    let mut buf: [(&str, &str); 8] = [("", ""); 8];
    let mut n = 0usize;
    let mut overflow: Vec<(&str, &str)> = Vec::new();
    for (k, v) in &event.labels {
        if let Value::Str(s) = v {
            let pair = (k.as_ref(), s.as_ref());
            if n < buf.len() {
                buf[n] = pair;
                n += 1;
            } else {
                overflow.push(pair);
            }
        }
    }
    if overflow.is_empty() {
        buf[..n].sort_unstable();
        f(&buf[..n])
    } else {
        let mut all: Vec<(&str, &str)> = buf[..n].to_vec();
        all.append(&mut overflow);
        all.sort_unstable();
        f(&all)
    }
}

/// Orders a stored (owned) key against a borrowed probe, matching the
/// natural `Ord` of [`SeriesKey`].
fn cmp_key(stored: &SeriesKey, name: &str, labels: &[(&str, &str)]) -> Ordering {
    stored.0.as_str().cmp(name).then_with(|| {
        let mut i = 0;
        loop {
            match (stored.1.get(i), labels.get(i)) {
                (None, None) => return Ordering::Equal,
                (None, Some(_)) => return Ordering::Less,
                (Some(_), None) => return Ordering::Greater,
                (Some((ak, av)), Some((bk, bv))) => {
                    let c = ak.as_str().cmp(bk).then_with(|| av.as_str().cmp(bv));
                    if c != Ordering::Equal {
                        return c;
                    }
                }
            }
            i += 1;
        }
    })
}

/// Finds or inserts the series for `(name, labels)` in a sorted table
/// and applies `f` to its value. Only a miss allocates the owned key.
fn update<T: Default>(
    table: &mut Vec<(SeriesKey, T)>,
    name: &str,
    labels: &[(&str, &str)],
    f: impl FnOnce(&mut T),
) {
    match table.binary_search_by(|(key, _)| cmp_key(key, name, labels)) {
        Ok(i) => f(&mut table[i].1),
        Err(i) => {
            let key = (
                name.to_string(),
                labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
            );
            table.insert(i, (key, T::default()));
            f(&mut table[i].1);
        }
    }
}

impl MetricsRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        MetricsRecorder::default()
    }

    /// Total of a counter series summed across all label combinations.
    pub fn counter_total(&self, name: &str) -> u64 {
        lock_recover(&self.state)
            .counters
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// The span-duration histogram for `name` (seconds), merged across
    /// all label combinations. `None` when no such span was recorded.
    pub fn span_histogram(&self, name: &str) -> Option<Histogram> {
        merged(&lock_recover(&self.state).spans, name)
    }

    /// The observation histogram for `name`, merged across all label
    /// combinations. `None` when no such observation was recorded.
    pub fn observe_histogram(&self, name: &str) -> Option<Histogram> {
        merged(&lock_recover(&self.state).observes, name)
    }

    /// Copies out every aggregated series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let state = lock_recover(&self.state);
        MetricsSnapshot {
            counters: state
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            spans: state
                .spans
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
            observes: state
                .observes
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
        }
    }

    /// Renders the full Prometheus text exposition of this recorder's
    /// aggregates (see [`crate::prom`] for the format rules).
    pub fn render_prometheus(&self) -> String {
        crate::prom::render_snapshot(&self.snapshot())
    }
}

fn merged(entries: &[(SeriesKey, Histogram)], name: &str) -> Option<Histogram> {
    let mut out: Option<Histogram> = None;
    for ((n, _), h) in entries {
        if n == name {
            out.get_or_insert_with(Histogram::new).merge(h);
        }
    }
    out
}

impl Recorder for MetricsRecorder {
    fn record(&self, event: Event) {
        with_sorted_string_labels(&event, |labels| {
            let name = event.name.as_ref();
            let mut state = lock_recover(&self.state);
            match event.kind {
                EventKind::Counter { delta } => {
                    update(&mut state.counters, name, labels, |total| *total += delta);
                }
                EventKind::Mark => {
                    update(&mut state.counters, name, labels, |total| *total += 1);
                }
                EventKind::Span { nanos } => {
                    update(&mut state.spans, name, labels, |h| {
                        h.record(nanos as f64 / 1e9)
                    });
                }
                EventKind::Observe { value } => {
                    update(&mut state.observes, name, labels, |h| h.record(value));
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_by_name_and_string_labels_only() {
        let m = MetricsRecorder::new();
        // Numeric labels (request ids) must not split the series.
        for rid in 0..100u64 {
            m.record(
                Event::new("engine.request", EventKind::Span { nanos: 1_000_000 })
                    .with_label("op", "score")
                    .with_label("request", rid),
            );
        }
        m.record(
            Event::new("engine.request", EventKind::Span { nanos: 2_000_000 })
                .with_label("op", "detect"),
        );
        let snap = m.snapshot();
        assert_eq!(snap.spans.len(), 2, "one series per op, not per request");
        let h = m.span_histogram("engine.request").unwrap();
        assert_eq!(h.count(), 101);
        // Durations are in seconds.
        assert!((h.max() - 0.002).abs() < 1e-4);
    }

    #[test]
    fn counters_and_marks_accumulate() {
        let m = MetricsRecorder::new();
        m.record(Event::new("c", EventKind::Counter { delta: 3 }));
        m.record(Event::new("c", EventKind::Counter { delta: 4 }));
        m.record(Event::new("plan", EventKind::Mark));
        m.record(Event::new("plan", EventKind::Mark));
        assert_eq!(m.counter_total("c"), 7);
        assert_eq!(m.counter_total("plan"), 2);
        assert_eq!(m.counter_total("absent"), 0);
    }

    #[test]
    fn observations_keep_their_unit() {
        let m = MetricsRecorder::new();
        m.record(Event::new("bytes", EventKind::Observe { value: 4096.0 }));
        m.record(Event::new("bytes", EventKind::Observe { value: 8192.0 }));
        let h = m.observe_histogram("bytes").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 12_288.0);
        assert!(m.observe_histogram("missing").is_none());
    }
}

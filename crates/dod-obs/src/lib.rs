//! Structured tracing and metrics for the DOD system (`dod-obs`).
//!
//! Every layer of the pipeline — the MapReduce substrate, the detectors,
//! the DOD pipeline itself, and the CLI/bench front-ends — reports what
//! it does as typed [`Event`]s through an [`Obs`] handle:
//!
//! * **spans** — timed scopes ([`ObsScope`], RAII) or externally measured
//!   durations ([`Obs::record_duration`]): per-task wall times, pipeline
//!   phases;
//! * **counters** — monotonic increments ([`Obs::counter`]): distance
//!   evaluations, shuffle records, retries;
//! * **observations** — histogram samples ([`Obs::observe`]): per-reducer
//!   shuffle bytes, simulated makespans;
//! * **marks** — point events ([`Obs::mark`]): plan decisions, locality
//!   outcomes.
//!
//! Events flow into a pluggable [`Recorder`]. Shipped sinks:
//!
//! * the disabled default (`Obs::null()`): every emit method is an
//!   `#[inline]` check of an `Option` that is `None` — no allocation, no
//!   locking, no I/O;
//! * [`MemoryRecorder`]: buffers events for queries from tests and
//!   benches;
//! * [`JsonlRecorder`]: one JSON object per line, consumable by external
//!   tools and replayable via [`replay`];
//! * [`MetricsRecorder`]: serving-grade aggregation — counters plus
//!   mergeable log-linear [`Histogram`]s with p50/p95/p99/p999
//!   snapshots, renderable as a Prometheus text exposition ([`prom`]);
//! * [`FlightRecorder`]: a bounded, non-blocking ring of the most
//!   recent events, dumped as replayable JSONL when a request fails.
//!
//! The workspace builds offline, so all JSON is hand-rolled; the shared
//! writing primitives (escaping, non-finite-as-`null`) live in [`json`]
//! and are used by the trace writer here and by `dod serve`.
//!
//! The event taxonomy used by the workspace is documented in
//! `DESIGN.md` (§Observability); [`render::render_summary`] folds any
//! event stream into the human-readable table behind `dod --profile`.

pub mod atomic;
mod event;
mod flight;
mod hist;
pub mod json;
mod jsonl;
mod memory;
mod metrics;
pub mod names;
mod obs;
pub mod prom;
mod recorder;
pub mod render;
pub mod replay;
pub mod sync;

pub use atomic::write_atomic;
pub use event::{Event, EventKind, Value};
pub use flight::{FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use hist::{Histogram, HistogramSummary};
pub use jsonl::{event_to_json, JsonlRecorder};
pub use memory::MemoryRecorder;
pub use metrics::{MetricsRecorder, MetricsSnapshot};
pub use obs::{Obs, ObsScope};
pub use recorder::{FanoutRecorder, NullRecorder, Recorder};

//! Poison-recovering lock helpers.
//!
//! A panicking task must not take the whole system down with it: the
//! MapReduce scheduler retries panicking task attempts and the resident
//! engine isolates panicking requests, so both routinely hold locks
//! across code that is *expected* to panic under fault injection. With
//! plain `lock().expect(..)` a single panic while a guard is live
//! poisons the mutex and cascades into every other thread touching the
//! shared state — turning one recoverable task failure into a
//! whole-job (or whole-engine) crash.
//!
//! These helpers recover the guard from a [`PoisonError`] instead. That
//! is sound here because every protected structure in this workspace is
//! kept consistent *per operation* (a slot write, a counter bump, a
//! whole-value swap); there is no multi-step critical section that a
//! panic can leave half-applied.

use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Locks `m`, recovering the guard if a previous holder panicked.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks `l`, recovering the guard if a previous writer panicked.
pub fn read_recover<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks `l`, recovering the guard if a previous holder panicked.
pub fn write_recover<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// Waits on `cv`, recovering the guard if a concurrent holder panicked.
pub fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, RwLock};

    #[test]
    fn mutex_survives_a_panicking_holder() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = catch_unwind(AssertUnwindSafe(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        }));
        assert!(m.lock().is_err(), "mutex should be poisoned");
        assert_eq!(*lock_recover(&m), 7);
        *lock_recover(&m) = 8;
        assert_eq!(*lock_recover(&m), 8);
    }

    #[test]
    fn rwlock_survives_a_panicking_writer() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let l2 = Arc::clone(&l);
        let _ = catch_unwind(AssertUnwindSafe(move || {
            let _guard = l2.write().unwrap();
            panic!("poison it");
        }));
        assert_eq!(read_recover(&l).len(), 3);
        write_recover(&l).push(4);
        assert_eq!(read_recover(&l).len(), 4);
    }
}

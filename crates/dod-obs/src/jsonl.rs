//! JSON Lines recorder: one event per line, hand-rolled (no serde).
//!
//! Line format (stable, consumed by [`crate::replay`]):
//!
//! ```json
//! {"name":"mapreduce.task","kind":"span","nanos":12345,"labels":{"stage":"map","task":0}}
//! {"name":"detect.distance_evals","kind":"counter","delta":99,"labels":{"partition":2}}
//! {"name":"mapreduce.shuffle.bytes","kind":"observe","value":4096.0,"labels":{}}
//! {"name":"dod.plan.partition","kind":"mark","labels":{"algorithm":"cell_based"}}
//! ```

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::{Event, EventKind, Value};
use crate::json::{write_f64 as write_json_f64, write_str as write_json_string};
use crate::recorder::Recorder;
use crate::sync::lock_recover;

/// Writes each event as one JSON object per line.
pub struct JsonlRecorder {
    writer: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl JsonlRecorder {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlRecorder::from_writer(Box::new(file)))
    }

    /// Wraps an arbitrary writer (tests use `Vec<u8>` via a cursor).
    pub fn from_writer(writer: Box<dyn Write + Send>) -> Self {
        JsonlRecorder {
            writer: Mutex::new(BufWriter::new(writer)),
        }
    }

    fn write_event(out: &mut impl Write, event: &Event) -> io::Result<()> {
        out.write_all(b"{\"name\":")?;
        write_json_string(out, &event.name)?;
        match event.kind {
            EventKind::Span { nanos } => write!(out, ",\"kind\":\"span\",\"nanos\":{nanos}")?,
            EventKind::Counter { delta } => write!(out, ",\"kind\":\"counter\",\"delta\":{delta}")?,
            EventKind::Observe { value } => {
                out.write_all(b",\"kind\":\"observe\",\"value\":")?;
                write_json_f64(out, value)?;
            }
            EventKind::Mark => out.write_all(b",\"kind\":\"mark\"")?,
        }
        out.write_all(b",\"labels\":{")?;
        for (i, (key, value)) in event.labels.iter().enumerate() {
            if i > 0 {
                out.write_all(b",")?;
            }
            write_json_string(out, key)?;
            out.write_all(b":")?;
            match value {
                Value::Str(s) => write_json_string(out, s)?,
                Value::U64(v) => write!(out, "{v}")?,
                Value::I64(v) => write!(out, "{v}")?,
                Value::F64(v) => write_json_f64(out, *v)?,
            }
        }
        out.write_all(b"}}\n")
    }
}

impl Recorder for JsonlRecorder {
    fn record(&self, event: Event) {
        let mut writer = lock_recover(&self.writer);
        // Ignore I/O errors at emit time; a broken trace file must not
        // take down the pipeline run it observes.
        let _ = Self::write_event(&mut *writer, &event);
    }

    fn flush(&self) {
        let _ = lock_recover(&self.writer).flush();
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Serializes one event to its JSONL line (no trailing newline) — the
/// exact format [`JsonlRecorder`] writes and [`crate::replay`] parses.
/// Used by the flight recorder to dump its ring as replayable JSONL.
pub fn event_to_json(event: &Event) -> String {
    let mut buf = Vec::new();
    JsonlRecorder::write_event(&mut buf, event).expect("writing to a Vec cannot fail");
    buf.pop(); // trailing '\n'
    String::from_utf8(buf).expect("writer emits valid UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// Shared byte sink so the test can inspect what was written.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn emits_one_escaped_json_object_per_line() {
        let buf = SharedBuf::default();
        let rec = JsonlRecorder::from_writer(Box::new(buf.clone()));
        rec.record(
            Event::new("a.b", EventKind::Span { nanos: 5 })
                .with_label("stage", "map")
                .with_label("task", 1u64),
        );
        rec.record(Event::new("quote\"d", EventKind::Mark).with_label("f", 0.5f64));
        rec.record(Event::new("int_float", EventKind::Observe { value: 3.0 }));
        rec.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            r#"{"name":"a.b","kind":"span","nanos":5,"labels":{"stage":"map","task":1}}"#
        );
        assert_eq!(
            lines[1],
            r#"{"name":"quote\"d","kind":"mark","labels":{"f":0.5}}"#
        );
        assert_eq!(
            lines[2],
            r#"{"name":"int_float","kind":"observe","value":3.0,"labels":{}}"#
        );
    }

    #[test]
    fn non_finite_values_serialize_as_null_not_bare_nan() {
        // Regression: `format!("{}", f64::NAN)` yields the bare token
        // `NaN`, which is not JSON. Observe values and f64 labels must
        // both degrade to `null` so every emitted line stays parseable.
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let line = event_to_json(
                &Event::new("drift", EventKind::Observe { value: v }).with_label("ratio", v),
            );
            assert_eq!(
                line,
                r#"{"name":"drift","kind":"observe","value":null,"labels":{"ratio":null}}"#
            );
            crate::replay::parse_line(&line).expect("null round-trips through replay");
        }
    }

    #[test]
    fn event_to_json_matches_recorder_output() {
        let event = Event::new("a.b", EventKind::Counter { delta: 9 }).with_label("p", 3u64);
        let buf = SharedBuf::default();
        let rec = JsonlRecorder::from_writer(Box::new(buf.clone()));
        rec.record(event.clone());
        rec.flush();
        let written = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(written.trim_end(), event_to_json(&event));
    }
}

//! The event model: one [`Event`] per emitted fact.

use std::borrow::Cow;
use std::fmt;

/// A label value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string label (e.g. algorithm name, node id).
    Str(Cow<'static, str>),
    /// An unsigned integer label (e.g. partition index).
    U64(u64),
    /// A signed integer label.
    I64(i64),
    /// A floating-point label (e.g. a rate or fraction).
    F64(f64),
}

impl Value {
    /// The value as `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `f64`, converting integer variants.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            Value::Str(_) => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
        }
    }
}

impl From<&'static str> for Value {
    fn from(s: &'static str) -> Self {
        Value::Str(Cow::Borrowed(s))
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Cow::Owned(s))
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

/// What kind of measurement an event carries.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A completed timed scope, in nanoseconds of wall time.
    Span {
        /// Wall-clock duration of the scope in nanoseconds.
        nanos: u64,
    },
    /// A monotonic counter increment.
    Counter {
        /// Amount added to the counter.
        delta: u64,
    },
    /// One sample of a distribution (histogram-style).
    Observe {
        /// The sampled value.
        value: f64,
    },
    /// A point event with no measurement, only labels.
    Mark,
}

impl EventKind {
    /// Short tag used in serialized form: `span`/`counter`/`observe`/`mark`.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::Span { .. } => "span",
            EventKind::Counter { .. } => "counter",
            EventKind::Observe { .. } => "observe",
            EventKind::Mark => "mark",
        }
    }
}

/// One structured event: a dotted name, a measurement, and labels.
///
/// Names are dotted paths (`mapreduce.task`, `detect.distance_evals`)
/// listed in DESIGN.md §Observability. Labels carry the dimensions a
/// query will group by (stage, task index, partition, algorithm, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Dotted event name, e.g. `dod.phase`.
    pub name: Cow<'static, str>,
    /// The measurement.
    pub kind: EventKind,
    /// Label key/value pairs, in emission order.
    pub labels: Vec<(Cow<'static, str>, Value)>,
}

impl Event {
    /// Creates an event with no labels.
    pub fn new(name: impl Into<Cow<'static, str>>, kind: EventKind) -> Self {
        Event {
            name: name.into(),
            kind,
            labels: Vec::new(),
        }
    }

    /// Adds a label (builder style).
    #[must_use]
    pub fn with_label(
        mut self,
        key: impl Into<Cow<'static, str>>,
        value: impl Into<Value>,
    ) -> Self {
        self.labels.push((key.into(), value.into()));
        self
    }

    /// Looks up a label by key.
    pub fn label(&self, key: &str) -> Option<&Value> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The span duration in nanoseconds, if this is a span.
    pub fn span_nanos(&self) -> Option<u64> {
        match self.kind {
            EventKind::Span { nanos } => Some(nanos),
            _ => None,
        }
    }

    /// The counter delta, if this is a counter.
    pub fn counter_delta(&self) -> Option<u64> {
        match self.kind {
            EventKind::Counter { delta } => Some(delta),
            _ => None,
        }
    }

    /// The observed sample, if this is an observation.
    pub fn observed(&self) -> Option<f64> {
        match self.kind {
            EventKind::Observe { value } => Some(value),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_lookup_in_order() {
        let e = Event::new("x", EventKind::Mark)
            .with_label("a", 1u64)
            .with_label("b", "two")
            .with_label("a", 3u64);
        assert_eq!(e.label("a"), Some(&Value::U64(1)));
        assert_eq!(e.label("b").and_then(Value::as_str), Some("two"));
        assert_eq!(e.label("missing"), None);
    }

    #[test]
    fn kind_accessors() {
        assert_eq!(
            Event::new("s", EventKind::Span { nanos: 7 }).span_nanos(),
            Some(7)
        );
        assert_eq!(
            Event::new("c", EventKind::Counter { delta: 3 }).counter_delta(),
            Some(3)
        );
        assert_eq!(
            Event::new("o", EventKind::Observe { value: 1.5 }).observed(),
            Some(1.5)
        );
        assert_eq!(Event::new("m", EventKind::Mark).span_nanos(), None);
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3usize).as_u64(), Some(3));
        assert_eq!(Value::from(2.5f64).as_f64(), Some(2.5));
        assert_eq!(Value::from(-4i64).as_f64(), Some(-4.0));
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(Value::from("s").as_f64(), None);
    }
}

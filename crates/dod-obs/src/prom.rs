//! Hand-rolled Prometheus text-format exposition (no dependencies).
//!
//! Rendering rules, matching the exposition-format spec closely enough
//! for any Prometheus-compatible scraper:
//!
//! * event names are sanitized to `[a-zA-Z0-9_]` and prefixed `dod_`
//!   (`engine.request` → `dod_engine_request`);
//! * counters render as `# TYPE … counter` with a `_total` suffix;
//! * span and observation histograms render as `# TYPE … summary` with
//!   `quantile` series (p50/p95/p99/p999) plus `_sum` and `_count`;
//!   span metrics additionally get a `_seconds` unit suffix;
//! * gauges ([`PromWriter::gauge`]) carry live engine state (queue
//!   depth, in-flight, epoch) sampled at scrape time;
//! * label values are escaped per the spec (`\\`, `\"`, `\n`);
//! * non-finite sample values render as `NaN`/`+Inf`/`-Inf`, which the
//!   format permits (unlike JSON).

use crate::hist::HistogramSummary;
use crate::metrics::MetricsSnapshot;

/// Maps an event name to a Prometheus metric name: sanitize, prefix.
pub fn metric_name(event_name: &str) -> String {
    let mut out = String::with_capacity(event_name.len() + 4);
    out.push_str("dod_");
    for c in event_name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Incrementally builds one exposition document.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty document.
    pub fn new() -> Self {
        PromWriter::default()
    }

    /// Appends one gauge sample (already-sanitized metric name).
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {}\n",
            format_value(value)
        ));
    }

    /// Appends a gauge family with one sample per label set (e.g. a
    /// per-algorithm calibration ratio).
    pub fn gauge_series(&mut self, name: &str, help: &str, series: &[(&[(String, String)], f64)]) {
        self.out
            .push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
        for (labels, value) in series {
            self.out.push_str(&format!(
                "{name}{} {}\n",
                render_labels(labels, None),
                format_value(*value)
            ));
        }
    }

    /// Appends a counter family: one `_total` sample per label set.
    pub fn counter(&mut self, name: &str, help: &str, series: &[(&[(String, String)], u64)]) {
        self.out.push_str(&format!(
            "# HELP {name}_total {help}\n# TYPE {name}_total counter\n"
        ));
        for (labels, value) in series {
            self.out.push_str(&format!(
                "{name}_total{} {value}\n",
                render_labels(labels, None)
            ));
        }
    }

    /// Appends a summary family: four `quantile` samples plus `_sum`
    /// and `_count` per label set.
    pub fn summary(
        &mut self,
        name: &str,
        help: &str,
        series: &[(&[(String, String)], HistogramSummary)],
    ) {
        self.out
            .push_str(&format!("# HELP {name} {help}\n# TYPE {name} summary\n"));
        for (labels, s) in series {
            for (q, v) in [
                ("0.5", s.p50),
                ("0.95", s.p95),
                ("0.99", s.p99),
                ("0.999", s.p999),
            ] {
                self.out.push_str(&format!(
                    "{name}{} {}\n",
                    render_labels(labels, Some(("quantile", q))),
                    format_value(v)
                ));
            }
            let plain = render_labels(labels, None);
            self.out
                .push_str(&format!("{name}_sum{plain} {}\n", format_value(s.sum)));
            self.out
                .push_str(&format!("{name}_count{plain} {}\n", s.count));
        }
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Renders every series of a [`MetricsSnapshot`]: counters, span
/// summaries (with a `_seconds` suffix), and observation summaries.
pub fn render_snapshot(snapshot: &MetricsSnapshot) -> String {
    let mut w = PromWriter::new();
    for_each_family(&snapshot.counters, |name, series| {
        let series: Vec<(&[(String, String)], u64)> = series
            .iter()
            .map(|((_, labels), v)| (labels.as_slice(), *v))
            .collect();
        let help = crate::names::prom_help(name).unwrap_or("Aggregated event counter.");
        w.counter(&metric_name(name), help, &series);
    });
    for_each_family(&snapshot.spans, |name, series| {
        let series: Vec<(&[(String, String)], HistogramSummary)> = series
            .iter()
            .map(|((_, labels), s)| (labels.as_slice(), *s))
            .collect();
        let help = crate::names::prom_help(name).unwrap_or("Span duration summary in seconds.");
        w.summary(&format!("{}_seconds", metric_name(name)), help, &series);
    });
    for_each_family(&snapshot.observes, |name, series| {
        let series: Vec<(&[(String, String)], HistogramSummary)> = series
            .iter()
            .map(|((_, labels), s)| (labels.as_slice(), *s))
            .collect();
        let help = crate::names::prom_help(name).unwrap_or("Observed sample summary.");
        w.summary(&metric_name(name), help, &series);
    });
    w.finish()
}

/// Groups consecutive snapshot entries (sorted by key) by event name.
fn for_each_family<T>(
    entries: &[(crate::metrics::SeriesKey, T)],
    mut f: impl FnMut(&str, &[(crate::metrics::SeriesKey, T)]),
) {
    let mut start = 0;
    while start < entries.len() {
        let name = &entries[start].0 .0;
        let mut end = start + 1;
        while end < entries.len() && entries[end].0 .0 == *name {
            end += 1;
        }
        f(name, &entries[start..end]);
        start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};
    use crate::metrics::MetricsRecorder;
    use crate::recorder::Recorder;

    #[test]
    fn metric_names_are_sanitized_and_prefixed() {
        assert_eq!(metric_name("engine.request"), "dod_engine_request");
        assert_eq!(
            metric_name("detect.distance_evals"),
            "dod_detect_distance_evals"
        );
        assert_eq!(metric_name("weird-name!"), "dod_weird_name_");
    }

    #[test]
    fn exposition_contains_counters_summaries_and_gauges() {
        let m = MetricsRecorder::new();
        m.record(
            Event::new("engine.task_panics", EventKind::Counter { delta: 2 })
                .with_label("op", "score"),
        );
        for nanos in [1_000_000u64, 2_000_000, 100_000_000] {
            m.record(
                Event::new("engine.request", EventKind::Span { nanos }).with_label("op", "score"),
            );
        }
        m.record(Event::new(
            "engine.queue_depth",
            EventKind::Observe { value: 3.0 },
        ));
        let mut text = m.render_prometheus();
        let mut w = PromWriter::new();
        w.gauge("dod_engine_queue_depth_now", "Live queue depth.", 1.0);
        text.push_str(&w.finish());

        assert!(text.contains("# TYPE dod_engine_task_panics_total counter"));
        assert!(text.contains("dod_engine_task_panics_total{op=\"score\"} 2"));
        assert!(text.contains("# TYPE dod_engine_request_seconds summary"));
        assert!(text.contains("dod_engine_request_seconds{op=\"score\",quantile=\"0.99\"}"));
        assert!(text.contains("dod_engine_request_seconds_count{op=\"score\"} 3"));
        assert!(text.contains("# TYPE dod_engine_queue_depth summary"));
        assert!(text.contains("dod_engine_queue_depth_now 1"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "bad line: {line}");
        }
    }

    #[test]
    fn label_values_are_escaped_and_nonfinite_values_render() {
        let mut w = PromWriter::new();
        w.counter(
            "dod_x",
            "h",
            &[(&[("k".to_string(), "a\"b\\c\nd".to_string())][..], 1)],
        );
        w.gauge("dod_g", "h", f64::NAN);
        let text = w.finish();
        assert!(text.contains(r#"dod_x_total{k="a\"b\\c\nd"} 1"#));
        assert!(text.contains("dod_g NaN"));
    }
}

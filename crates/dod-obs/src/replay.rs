//! Replays a JSONL trace back into [`Event`]s.
//!
//! The parser accepts the exact format written by
//! [`crate::JsonlRecorder`] (flat objects, one nesting level for
//! `labels`) — it is not a general JSON parser, but it tolerates
//! arbitrary key order and insignificant whitespace so hand-edited or
//! externally produced traces also load.

use std::borrow::Cow;
use std::fs;
use std::path::Path;

use crate::event::{Event, EventKind, Value};

/// A parse failure, with the offending line (1-based) when known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// 1-based line number, 0 when not tied to a line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "trace line {}: {}", self.line, self.message)
        } else {
            write!(f, "trace: {}", self.message)
        }
    }
}

impl std::error::Error for ReplayError {}

/// Parses a whole JSONL document (blank lines ignored).
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, ReplayError> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let event = parse_line(line).map_err(|message| ReplayError {
            line: idx + 1,
            message,
        })?;
        events.push(event);
    }
    Ok(events)
}

/// Reads and parses a trace file.
pub fn read_jsonl(path: impl AsRef<Path>) -> Result<Vec<Event>, ReplayError> {
    let text = fs::read_to_string(path.as_ref()).map_err(|e| ReplayError {
        line: 0,
        message: format!("cannot read {}: {e}", path.as_ref().display()),
    })?;
    parse_jsonl(&text)
}

/// Parses one JSONL line into an event.
pub fn parse_line(line: &str) -> Result<Event, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut name: Option<String> = None;
    let mut kind_tag: Option<String> = None;
    let mut nanos: Option<u64> = None;
    let mut delta: Option<u64> = None;
    let mut value: Option<f64> = None;
    let mut labels: Vec<(Cow<'static, str>, Value)> = Vec::new();
    loop {
        p.skip_ws();
        if p.eat(b'}') {
            break;
        }
        let key = p.parse_string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        match key.as_str() {
            "name" => name = Some(p.parse_string()?),
            "kind" => kind_tag = Some(p.parse_string()?),
            "nanos" => nanos = Some(p.parse_number()?.as_u64()?),
            "delta" => delta = Some(p.parse_number()?.as_u64()?),
            // `null` is what the writer emits for non-finite samples.
            "value" => {
                value = Some(if p.eat_null() {
                    f64::NAN
                } else {
                    p.parse_number()?.as_f64()
                })
            }
            "labels" => {
                p.expect(b'{')?;
                loop {
                    p.skip_ws();
                    if p.eat(b'}') {
                        break;
                    }
                    let label_key = p.parse_string()?;
                    p.skip_ws();
                    p.expect(b':')?;
                    p.skip_ws();
                    let label_value = p.parse_value()?;
                    labels.push((Cow::Owned(label_key), label_value));
                    p.skip_ws();
                    if !p.eat(b',') {
                        p.skip_ws();
                        p.expect(b'}')?;
                        break;
                    }
                }
            }
            other => return Err(format!("unknown key {other:?}")),
        }
        p.skip_ws();
        if !p.eat(b',') {
            p.skip_ws();
            p.expect(b'}')?;
            break;
        }
    }
    let name = name.ok_or("missing \"name\"")?;
    let kind = match kind_tag.as_deref() {
        Some("span") => EventKind::Span {
            nanos: nanos.ok_or("span missing \"nanos\"")?,
        },
        Some("counter") => EventKind::Counter {
            delta: delta.ok_or("counter missing \"delta\"")?,
        },
        Some("observe") => EventKind::Observe {
            value: value.ok_or("observe missing \"value\"")?,
        },
        Some("mark") => EventKind::Mark,
        Some(other) => return Err(format!("unknown kind {other:?}")),
        None => return Err("missing \"kind\"".to_string()),
    };
    Ok(Event {
        name: Cow::Owned(name),
        kind,
        labels,
    })
}

/// A parsed JSON number, kept in whichever representation was written.
enum Number {
    Unsigned(u64),
    Signed(i64),
    Float(f64),
}

impl Number {
    fn as_u64(&self) -> Result<u64, String> {
        match *self {
            Number::Unsigned(v) => Ok(v),
            Number::Signed(v) if v >= 0 => Ok(v as u64),
            _ => Err("expected a non-negative integer".to_string()),
        }
    }

    fn as_f64(&self) -> f64 {
        match *self {
            Number::Unsigned(v) => v as f64,
            Number::Signed(v) => v as f64,
            Number::Float(v) => v,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_null(&mut self) -> bool {
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {} (found {:?})",
                b as char,
                self.pos,
                self.peek().map(|c| c as char),
            ))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err("unterminated string".to_string());
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = *rest.get(1).ok_or("dangling escape")?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Number, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid number")?;
        if text.is_empty() {
            return Err(format!("expected a number at byte {start}"));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<i64>().is_ok() {
                    return Ok(Number::Signed(text.parse().map_err(|_| "bad integer")?));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Number::Unsigned(v));
            }
        }
        text.parse::<f64>()
            .map(Number::Float)
            .map_err(|_| format!("bad number {text:?}"))
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(Cow::Owned(self.parse_string()?))),
            Some(b'n') => {
                // `null` only appears for non-finite floats we refused to write.
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(Value::F64(f64::NAN))
                } else {
                    Err("unexpected token".to_string())
                }
            }
            _ => Ok(match self.parse_number()? {
                Number::Unsigned(v) => Value::U64(v),
                Number::Signed(v) => Value::I64(v),
                Number::Float(v) => Value::F64(v),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_each_kind() {
        let text = concat!(
            "{\"name\":\"s\",\"kind\":\"span\",\"nanos\":12,\"labels\":{\"stage\":\"map\"}}\n",
            "{\"name\":\"c\",\"kind\":\"counter\",\"delta\":3,\"labels\":{\"p\":7}}\n",
            "{\"name\":\"o\",\"kind\":\"observe\",\"value\":2.5,\"labels\":{}}\n",
            "\n",
            "{\"name\":\"m\",\"kind\":\"mark\",\"labels\":{\"neg\":-4,\"rate\":0.5}}\n",
        );
        let events = parse_jsonl(text).unwrap();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].span_nanos(), Some(12));
        assert_eq!(
            events[0].label("stage").and_then(Value::as_str),
            Some("map")
        );
        assert_eq!(events[1].counter_delta(), Some(3));
        assert_eq!(events[1].label("p"), Some(&Value::U64(7)));
        assert_eq!(events[2].observed(), Some(2.5));
        assert_eq!(events[3].kind, EventKind::Mark);
        assert_eq!(events[3].label("neg"), Some(&Value::I64(-4)));
        assert_eq!(events[3].label("rate"), Some(&Value::F64(0.5)));
    }

    #[test]
    fn tolerates_whitespace_and_reordered_keys() {
        let line = r#" { "labels": { "a": 1 } , "kind": "span", "nanos": 9, "name": "x" } "#;
        let e = parse_line(line.trim()).unwrap();
        assert_eq!(e.name, "x");
        assert_eq!(e.span_nanos(), Some(9));
        assert_eq!(e.label("a"), Some(&Value::U64(1)));
    }

    #[test]
    fn escapes_round_trip() {
        let line = r#"{"name":"q\"uote\n","kind":"mark","labels":{"k":"tab\there é"}}"#;
        let e = parse_line(line).unwrap();
        assert_eq!(e.name, "q\"uote\n");
        assert_eq!(e.label("k").and_then(Value::as_str), Some("tab\there é"));
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse_jsonl("{\"name\":\"ok\",\"kind\":\"mark\",\"labels\":{}}\nnot json\n")
            .unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn histogram_events_round_trip_through_jsonl() {
        use crate::jsonl::event_to_json;
        use crate::memory::MemoryRecorder;
        use crate::recorder::Recorder;

        // Record a realistic mix of spans and observations…
        let original = MemoryRecorder::new();
        for i in 1..=200u64 {
            original.record(
                Event::new("engine.request", EventKind::Span { nanos: i * 17_000 })
                    .with_label("op", "score")
                    .with_label("request", i),
            );
            original.record(Event::new(
                "engine.queue_depth",
                EventKind::Observe {
                    value: (i % 7) as f64,
                },
            ));
        }
        original.record(Event::new(
            "engine.queue_depth",
            EventKind::Observe { value: 0.125 },
        ));

        // …write them as JSONL, replay, and re-record into a fresh sink.
        let text: String = original
            .events()
            .iter()
            .map(|e| format!("{}\n", event_to_json(e)))
            .collect();
        let replayed = MemoryRecorder::new();
        for event in parse_jsonl(&text).unwrap() {
            replayed.record(event);
        }

        // The snapshots are identical, event for event…
        assert_eq!(original.events(), replayed.events());
        // …and so are the derived percentile summaries.
        assert_eq!(
            original.span_histogram("engine.request").summary(),
            replayed.span_histogram("engine.request").summary(),
        );
        assert_eq!(
            original
                .observation_histogram("engine.queue_depth")
                .summary(),
            replayed
                .observation_histogram("engine.queue_depth")
                .summary(),
        );
        assert_eq!(original.span_histogram("engine.request").count(), 200);
    }

    #[test]
    fn rejects_missing_fields() {
        assert!(parse_line(r#"{"kind":"mark","labels":{}}"#).is_err());
        assert!(parse_line(r#"{"name":"x","labels":{}}"#).is_err());
        assert!(parse_line(r#"{"name":"x","kind":"span","labels":{}}"#).is_err());
    }
}

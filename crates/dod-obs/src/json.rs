//! Shared hand-rolled JSON *writing* primitives.
//!
//! The workspace builds offline (no serde), so every component that
//! emits JSON — the [`crate::JsonlRecorder`] trace writer, the flight
//! recorder's dump path, and the `dod serve` response loop — hand-rolls
//! it. The escaping and non-finite-number rules must agree everywhere
//! (a trace line and a serve response are both consumed by the same
//! replay/jq tooling), so the primitives live here instead of being
//! copied per crate.
//!
//! Two number flavors exist on purpose:
//!
//! * [`write_f64`] always emits a decimal point or exponent (`3.0`,
//!   never `3`) so the JSONL replay parser can tell floats from
//!   integers when round-tripping label values;
//! * [`number`] emits the shortest form (`0`, `1.5`) for human-facing
//!   response fields where the distinction does not matter.
//!
//! Both serialize non-finite values (`NaN`, `±Inf`) as `null`: bare
//! `NaN` is not valid JSON and would poison every downstream consumer.

use std::io::{self, Write};

/// Writes `s` as a JSON string literal with escaping.
pub fn write_str(out: &mut impl Write, s: &str) -> io::Result<()> {
    out.write_all(b"\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_all(b"\\\"")?,
            '\\' => out.write_all(b"\\\\")?,
            '\n' => out.write_all(b"\\n")?,
            '\r' => out.write_all(b"\\r")?,
            '\t' => out.write_all(b"\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_all(b"\"")
}

/// Writes an `f64` so it round-trips through the replay parser
/// (always with a decimal point or exponent; non-finite as `null`).
pub fn write_f64(out: &mut impl Write, v: f64) -> io::Result<()> {
    if !v.is_finite() {
        return out.write_all(b"null");
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        out.write_all(s.as_bytes())
    } else {
        write!(out, "{s}.0")
    }
}

/// Escapes a string for embedding between quotes in a JSON document
/// (the allocating form of [`write_str`], without the quotes).
pub fn escape(s: &str) -> String {
    let mut out = Vec::with_capacity(s.len() + 2);
    write_str(&mut out, s).expect("writing to a Vec cannot fail");
    let mut quoted = String::from_utf8(out).expect("escaping emits valid UTF-8");
    quoted.pop(); // closing quote
    quoted.remove(0); // opening quote
    quoted
}

/// Serializes an `f64` as a JSON value in its shortest form; non-finite
/// numbers (`NaN`, `±Inf`) become `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_quotes_controls_and_unicode() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("héllo"), "héllo");
    }

    /// Regression: non-finite f64s must serialize as `null` in both
    /// flavors, never as bare `NaN`/`inf` (which no JSON parser accepts).
    #[test]
    fn non_finite_numbers_are_null_in_both_flavors() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(number(v), "null");
            let mut buf = Vec::new();
            write_f64(&mut buf, v).unwrap();
            assert_eq!(buf, b"null");
        }
        assert_eq!(number(0.0), "0");
        assert_eq!(number(1.5), "1.5");
        let mut buf = Vec::new();
        write_f64(&mut buf, 3.0).unwrap();
        assert_eq!(buf, b"3.0", "replay flavor keeps the float marker");
    }
}

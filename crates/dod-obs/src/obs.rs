//! The [`Obs`] handle and RAII [`ObsScope`].

use std::borrow::Cow;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::event::{Event, EventKind, Value};
use crate::recorder::Recorder;

/// A cheap, cloneable handle through which code emits events.
///
/// The disabled handle ([`Obs::null`]) carries `None` and every emit
/// method returns after one branch, constructing nothing — this is the
/// default everywhere so instrumented code pays ~zero cost unless a
/// recorder is attached.
#[derive(Clone, Default)]
pub struct Obs(Option<Arc<dyn Recorder>>);

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Obs")
            .field(&self.0.as_ref().map(|_| "<recorder>"))
            .finish()
    }
}

impl Obs {
    /// The disabled handle: drops everything without allocating.
    pub fn null() -> Self {
        Obs(None)
    }

    /// A handle forwarding to `recorder`.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        Obs(Some(recorder))
    }

    /// Whether a recorder is attached. Use to skip label construction
    /// that is itself expensive.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The attached recorder, if any — lets a layer compose its own
    /// sinks (e.g. a flight recorder fanned out with the user's) around
    /// whatever the configuration supplied.
    pub fn recorder(&self) -> Option<Arc<dyn Recorder>> {
        self.0.clone()
    }

    /// Emits a fully formed event.
    #[inline]
    pub fn emit(&self, event: Event) {
        if let Some(recorder) = &self.0 {
            recorder.record(event);
        }
    }

    /// Starts a timed scope; the span event is emitted when the
    /// returned guard drops (or at [`ObsScope::finish`]).
    #[inline]
    pub fn scope(&self, name: impl Into<Cow<'static, str>>) -> ObsScope {
        if self.0.is_some() {
            ObsScope {
                obs: self.clone(),
                name: name.into(),
                labels: Vec::new(),
                start: Instant::now(),
                done: false,
            }
        } else {
            ObsScope {
                obs: Obs::null(),
                name: Cow::Borrowed(""),
                labels: Vec::new(),
                start: Instant::now(),
                done: true,
            }
        }
    }

    /// Emits a span for an externally measured duration.
    #[inline]
    pub fn record_duration(
        &self,
        name: impl Into<Cow<'static, str>>,
        duration: Duration,
        labels: &[(&'static str, Value)],
    ) {
        if self.0.is_some() {
            self.emit(with_labels(
                Event::new(
                    name,
                    EventKind::Span {
                        nanos: duration.as_nanos() as u64,
                    },
                ),
                labels,
            ));
        }
    }

    /// Emits a counter increment of `delta`.
    #[inline]
    pub fn counter(
        &self,
        name: impl Into<Cow<'static, str>>,
        delta: u64,
        labels: &[(&'static str, Value)],
    ) {
        if self.0.is_some() {
            self.emit(with_labels(
                Event::new(name, EventKind::Counter { delta }),
                labels,
            ));
        }
    }

    /// Emits one histogram sample.
    #[inline]
    pub fn observe(
        &self,
        name: impl Into<Cow<'static, str>>,
        value: f64,
        labels: &[(&'static str, Value)],
    ) {
        if self.0.is_some() {
            self.emit(with_labels(
                Event::new(name, EventKind::Observe { value }),
                labels,
            ));
        }
    }

    /// Emits a point event.
    #[inline]
    pub fn mark(&self, name: impl Into<Cow<'static, str>>, labels: &[(&'static str, Value)]) {
        if self.0.is_some() {
            self.emit(with_labels(Event::new(name, EventKind::Mark), labels));
        }
    }

    /// Flushes the underlying recorder, if any.
    pub fn flush(&self) {
        if let Some(recorder) = &self.0 {
            recorder.flush();
        }
    }
}

fn with_labels(mut event: Event, labels: &[(&'static str, Value)]) -> Event {
    event.labels.reserve(labels.len());
    for (k, v) in labels {
        event.labels.push((Cow::Borrowed(*k), v.clone()));
    }
    event
}

/// RAII guard for a timed scope; emits a span event on drop.
#[must_use = "the span is measured until this guard drops"]
pub struct ObsScope {
    obs: Obs,
    name: Cow<'static, str>,
    labels: Vec<(Cow<'static, str>, Value)>,
    start: Instant,
    done: bool,
}

impl ObsScope {
    /// Adds a label to the eventual span event.
    pub fn with_label(
        mut self,
        key: impl Into<Cow<'static, str>>,
        value: impl Into<Value>,
    ) -> Self {
        if !self.done {
            self.labels.push((key.into(), value.into()));
        }
        self
    }

    /// Adds a label in place (for labels only known mid-scope).
    pub fn add_label(&mut self, key: impl Into<Cow<'static, str>>, value: impl Into<Value>) {
        if !self.done {
            self.labels.push((key.into(), value.into()));
        }
    }

    /// Ends the scope now, returning the measured duration.
    pub fn finish(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.emit(elapsed);
        elapsed
    }

    fn emit(&mut self, elapsed: Duration) {
        if self.done {
            return;
        }
        self.done = true;
        self.obs.emit(Event {
            name: std::mem::replace(&mut self.name, Cow::Borrowed("")),
            kind: EventKind::Span {
                nanos: elapsed.as_nanos() as u64,
            },
            labels: std::mem::take(&mut self.labels),
        });
    }
}

impl Drop for ObsScope {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.emit(elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryRecorder;

    #[test]
    fn null_obs_is_disabled_and_silent() {
        let obs = Obs::null();
        assert!(!obs.enabled());
        obs.counter("c", 1, &[]);
        obs.mark("m", &[("k", Value::U64(1))]);
        let scope = obs.scope("s").with_label("x", 1u64);
        drop(scope);
        // Nothing to assert against — the point is it does not panic and
        // constructs nothing; covered further by the memory test below.
    }

    #[test]
    fn scope_emits_span_on_drop_with_labels() {
        let mem = Arc::new(MemoryRecorder::new());
        let obs = Obs::new(mem.clone());
        {
            let mut scope = obs.scope("work").with_label("stage", "map");
            scope.add_label("task", 3u64);
        }
        let events = mem.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "work");
        assert!(events[0].span_nanos().is_some());
        assert_eq!(
            events[0].label("stage").and_then(Value::as_str),
            Some("map")
        );
        assert_eq!(events[0].label("task").and_then(Value::as_u64), Some(3));
    }

    #[test]
    fn finish_emits_once() {
        let mem = Arc::new(MemoryRecorder::new());
        let obs = Obs::new(mem.clone());
        let scope = obs.scope("once");
        let d = scope.finish();
        assert!(d >= Duration::ZERO);
        assert_eq!(mem.events().len(), 1);
    }

    #[test]
    fn emit_helpers_carry_kind_and_labels() {
        let mem = Arc::new(MemoryRecorder::new());
        let obs = Obs::new(mem.clone());
        obs.counter("c", 5, &[("p", Value::U64(2))]);
        obs.observe("o", 1.25, &[]);
        obs.mark("m", &[("why", Value::from("test"))]);
        obs.record_duration("d", Duration::from_nanos(42), &[]);
        let events = mem.events();
        assert_eq!(events[0].counter_delta(), Some(5));
        assert_eq!(events[0].label("p").and_then(Value::as_u64), Some(2));
        assert_eq!(events[1].observed(), Some(1.25));
        assert_eq!(events[2].kind, EventKind::Mark);
        assert_eq!(events[3].span_nanos(), Some(42));
    }
}

//! Always-on flight recorder: a bounded ring of recent events.
//!
//! Serving engines need the events *leading up to* a failure, not a
//! full trace of everything since boot. The [`FlightRecorder`] keeps the
//! last `capacity` events in a fixed ring and dumps them as JSONL when
//! something goes wrong (panic, typed error, deadline overrun).
//!
//! The hot path never blocks: a writer claims a slot with one atomic
//! `fetch_add` and then *tries* to take that slot's lock. If a slow
//! reader (or a wrapped-around writer) holds it, the event is dropped
//! and counted instead of stalling the request that emitted it —
//! recording telemetry must never add latency to the work it observes.

use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::{Event, EventKind, Value};
use crate::jsonl::event_to_json;
use crate::recorder::Recorder;

/// Default ring capacity used by engines that don't configure one.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// A bounded, non-blocking ring buffer of recent [`Event`]s.
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<(u64, Event)>>>,
    head: AtomicU64,
    dropped: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// A ring holding the last `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events dropped because their slot was contended at write time.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut kept: Vec<(u64, Event)> = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            if let Ok(guard) = slot.try_lock() {
                if let Some((seq, event)) = guard.as_ref() {
                    kept.push((*seq, event.clone()));
                }
            }
        }
        kept.sort_unstable_by_key(|(seq, _)| *seq);
        kept.into_iter().map(|(_, e)| e).collect()
    }

    /// Dumps the retained events as JSONL to `out`, preceded by a
    /// header `mark` event (name [`crate::names::ENGINE_FLIGHT_DUMP`])
    /// carrying `reason`, the supplied labels, and the drop count. The
    /// output is replayable by [`crate::replay`].
    pub fn dump_jsonl(
        &self,
        out: &mut dyn Write,
        reason: &str,
        labels: &[(&'static str, Value)],
    ) -> io::Result<()> {
        let mut header = Event::new(crate::names::ENGINE_FLIGHT_DUMP, EventKind::Mark)
            .with_label("reason", reason.to_string())
            .with_label("dropped", self.dropped());
        for (k, v) in labels {
            header = header.with_label(*k, v.clone());
        }
        writeln!(out, "{}", event_to_json(&header))?;
        for event in self.snapshot() {
            writeln!(out, "{}", event_to_json(&event))?;
        }
        out.flush()
    }
}

impl Recorder for FlightRecorder {
    fn record(&self, event: Event) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        match slot.try_lock() {
            Ok(mut guard) => *guard = Some((seq, event)),
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::parse_jsonl;

    fn mark(i: u64) -> Event {
        Event::new("e", EventKind::Mark).with_label("i", i)
    }

    #[test]
    fn retains_only_the_most_recent_events_in_order() {
        let flight = FlightRecorder::new(4);
        for i in 0..10 {
            flight.record(mark(i));
        }
        let kept: Vec<u64> = flight
            .snapshot()
            .iter()
            .map(|e| e.label("i").and_then(Value::as_u64).unwrap())
            .collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
        assert_eq!(flight.dropped(), 0);
    }

    #[test]
    fn partial_ring_snapshots_cleanly() {
        let flight = FlightRecorder::new(8);
        flight.record(mark(0));
        flight.record(mark(1));
        assert_eq!(flight.snapshot().len(), 2);
    }

    #[test]
    fn dump_is_replayable_and_carries_the_reason() {
        let flight = FlightRecorder::new(4);
        flight.record(mark(1));
        flight.record(mark(2));
        let mut out = Vec::new();
        flight
            .dump_jsonl(&mut out, "panic", &[("request", Value::U64(7))])
            .unwrap();
        let events = parse_jsonl(std::str::from_utf8(&out).unwrap()).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, crate::names::ENGINE_FLIGHT_DUMP);
        assert_eq!(
            events[0].label("reason").and_then(Value::as_str),
            Some("panic")
        );
        assert_eq!(events[0].label("request").and_then(Value::as_u64), Some(7));
        assert_eq!(events[1].label("i").and_then(Value::as_u64), Some(1));
        assert_eq!(events[2].label("i").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn concurrent_writers_never_block_or_lose_count() {
        use std::sync::Arc;
        let flight = Arc::new(FlightRecorder::new(16));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let flight = Arc::clone(&flight);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        flight.record(mark(t * 1_000 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Everything was either retained or explicitly dropped.
        assert!(flight.snapshot().len() <= 16);
        assert_eq!(flight.head.load(Ordering::Relaxed), 2_000);
    }
}

//! In-memory recorder, queryable from tests and benches.

use std::sync::Mutex;

use crate::event::Event;
use crate::hist::Histogram;
use crate::recorder::Recorder;
use crate::sync::lock_recover;

/// Buffers every event in emission order.
///
/// Query helpers cover the common assertions: total of a counter,
/// span durations by name, events filtered by name.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Mutex<Vec<Event>>,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        MemoryRecorder::default()
    }

    /// A snapshot of all events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        lock_recover(&self.events).clone()
    }

    /// All events with exactly the given name.
    pub fn events_named(&self, name: &str) -> Vec<Event> {
        lock_recover(&self.events)
            .iter()
            .filter(|e| e.name == name)
            .cloned()
            .collect()
    }

    /// Sum of all counter deltas emitted under `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        lock_recover(&self.events)
            .iter()
            .filter(|e| e.name == name)
            .filter_map(Event::counter_delta)
            .sum()
    }

    /// Durations (nanoseconds) of all spans emitted under `name`.
    pub fn span_nanos(&self, name: &str) -> Vec<u64> {
        lock_recover(&self.events)
            .iter()
            .filter(|e| e.name == name)
            .filter_map(Event::span_nanos)
            .collect()
    }

    /// All histogram samples emitted under `name`.
    pub fn observations(&self, name: &str) -> Vec<f64> {
        lock_recover(&self.events)
            .iter()
            .filter(|e| e.name == name)
            .filter_map(Event::observed)
            .collect()
    }

    /// All observations of `name` folded into a percentile [`Histogram`]
    /// (empty histogram when none were recorded).
    pub fn observation_histogram(&self, name: &str) -> Histogram {
        let mut h = Histogram::new();
        for v in self.observations(name) {
            h.record(v);
        }
        h
    }

    /// All span durations of `name` folded into a [`Histogram`] of
    /// nanoseconds (empty histogram when none were recorded).
    pub fn span_histogram(&self, name: &str) -> Histogram {
        let mut h = Histogram::new();
        for nanos in self.span_nanos(name) {
            h.record(nanos as f64);
        }
        h
    }

    /// Discards all recorded events.
    pub fn clear(&self) {
        lock_recover(&self.events).clear();
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, event: Event) {
        lock_recover(&self.events).push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn query_helpers() {
        let mem = MemoryRecorder::new();
        mem.record(Event::new("c", EventKind::Counter { delta: 2 }));
        mem.record(Event::new("c", EventKind::Counter { delta: 3 }));
        mem.record(Event::new("s", EventKind::Span { nanos: 10 }));
        mem.record(Event::new("o", EventKind::Observe { value: 0.5 }));
        assert_eq!(mem.counter_total("c"), 5);
        assert_eq!(mem.span_nanos("s"), vec![10]);
        assert_eq!(mem.observations("o"), vec![0.5]);
        assert_eq!(mem.events_named("c").len(), 2);
        assert_eq!(mem.events().len(), 4);
        mem.clear();
        assert!(mem.events().is_empty());
    }
}

//! Folds an event stream into the human-readable `--profile` table.

use std::collections::BTreeMap;

use crate::event::Event;

#[derive(Default)]
struct SpanAgg {
    count: u64,
    total_nanos: u64,
    max_nanos: u64,
}

#[derive(Default)]
struct ObserveAgg {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Renders a deterministic summary of `events`, grouped by event name
/// and sorted alphabetically within each section. Returns a multi-line
/// string ending in a newline (empty string for an empty stream).
pub fn render_summary(events: &[Event]) -> String {
    let mut spans: BTreeMap<&str, SpanAgg> = BTreeMap::new();
    let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
    let mut observes: BTreeMap<&str, ObserveAgg> = BTreeMap::new();
    let mut marks: BTreeMap<&str, u64> = BTreeMap::new();

    for event in events {
        match event.kind {
            crate::EventKind::Span { nanos } => {
                let agg = spans.entry(&event.name).or_default();
                agg.count += 1;
                agg.total_nanos += nanos;
                agg.max_nanos = agg.max_nanos.max(nanos);
            }
            crate::EventKind::Counter { delta } => {
                *counters.entry(&event.name).or_default() += delta;
            }
            crate::EventKind::Observe { value } => {
                let agg = observes.entry(&event.name).or_default();
                if agg.count == 0 {
                    agg.min = value;
                    agg.max = value;
                } else {
                    agg.min = agg.min.min(value);
                    agg.max = agg.max.max(value);
                }
                agg.count += 1;
                agg.sum += value;
            }
            crate::EventKind::Mark => *marks.entry(&event.name).or_default() += 1,
        }
    }

    let mut out = String::new();
    if !spans.is_empty() {
        out.push_str("spans:\n");
        out.push_str(&format!(
            "  {:<34} {:>8} {:>12} {:>12} {:>12}\n",
            "name", "count", "total ms", "mean ms", "max ms"
        ));
        for (name, agg) in &spans {
            let total_ms = agg.total_nanos as f64 / 1e6;
            let mean_ms = total_ms / agg.count as f64;
            out.push_str(&format!(
                "  {:<34} {:>8} {:>12.3} {:>12.3} {:>12.3}\n",
                name,
                agg.count,
                total_ms,
                mean_ms,
                agg.max_nanos as f64 / 1e6,
            ));
        }
    }
    if !counters.is_empty() {
        out.push_str("counters:\n");
        out.push_str(&format!("  {:<34} {:>14}\n", "name", "total"));
        for (name, total) in &counters {
            out.push_str(&format!("  {:<34} {:>14}\n", name, total));
        }
    }
    if !observes.is_empty() {
        out.push_str("observations:\n");
        out.push_str(&format!(
            "  {:<34} {:>8} {:>12} {:>12} {:>12}\n",
            "name", "count", "mean", "min", "max"
        ));
        for (name, agg) in &observes {
            out.push_str(&format!(
                "  {:<34} {:>8} {:>12.3} {:>12.3} {:>12.3}\n",
                name,
                agg.count,
                agg.sum / agg.count as f64,
                agg.min,
                agg.max,
            ));
        }
    }
    if !marks.is_empty() {
        out.push_str("marks:\n");
        out.push_str(&format!("  {:<34} {:>8}\n", "name", "count"));
        for (name, count) in &marks {
            out.push_str(&format!("  {:<34} {:>8}\n", name, count));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, EventKind};

    #[test]
    fn aggregates_by_kind_and_name() {
        let events = vec![
            Event::new("b.span", EventKind::Span { nanos: 1_000_000 }),
            Event::new("b.span", EventKind::Span { nanos: 3_000_000 }),
            Event::new("a.count", EventKind::Counter { delta: 2 }),
            Event::new("a.count", EventKind::Counter { delta: 5 }),
            Event::new("c.obs", EventKind::Observe { value: 1.0 }),
            Event::new("c.obs", EventKind::Observe { value: 3.0 }),
            Event::new("d.mark", EventKind::Mark),
        ];
        let text = render_summary(&events);
        assert!(text.contains("spans:"), "{text}");
        assert!(text.contains("b.span"), "{text}");
        // total 4ms, mean 2ms, max 3ms
        assert!(text.contains("4.000"), "{text}");
        assert!(text.contains("counters:"), "{text}");
        assert!(text.contains('7'), "{text}");
        assert!(text.contains("observations:"), "{text}");
        assert!(text.contains("marks:"), "{text}");
    }

    #[test]
    fn empty_stream_renders_empty() {
        assert_eq!(render_summary(&[]), "");
    }
}

//! Well-known event names of the resident engine.
//!
//! The batch pipeline writes its event names inline at the emit sites
//! (`"dod.stage"`, `"dod.plan"`, `"mapreduce.task"`, …) because each
//! name has exactly one producer. The engine's names are shared between
//! the engine crate (producer) and dashboards/tests (consumers polling
//! queue depth or request spans), so they live here as constants both
//! sides can reference.

/// Span: one engine request, from dequeue to completion. Labels: `op`
/// (`"score"` or `"detect"`), `items` (points scored), `epoch`.
pub const ENGINE_REQUEST: &str = "engine.request";

/// Observation: submission-queue depth sampled at each enqueue attempt.
pub const ENGINE_QUEUE_DEPTH: &str = "engine.queue_depth";

/// Counter: requests rejected with `Overloaded` because the bounded
/// submission queue was full.
pub const ENGINE_REJECTED: &str = "engine.rejected";

/// Counter: requests that missed their deadline and returned
/// `DeadlineExceeded`.
pub const ENGINE_DEADLINE_MISSES: &str = "engine.deadline_misses";

/// Counter: requests answered entirely from resident partition state
/// (no rebuild) — the engine's cache hits.
pub const ENGINE_CACHE_HITS: &str = "engine.cache_hits";

/// Span: one full plan refresh (re-sample, re-plan, re-materialize).
/// Labels: `epoch` (the new epoch), `drift` (the observed drift that
/// triggered it, when drift-triggered).
pub const ENGINE_REFRESH: &str = "engine.refresh";

/// Mark: a drift probe. Labels: `drift` (total-variation distance in
/// `[0, 1]`), `threshold`, `refreshed` (whether a refresh was triggered).
pub const ENGINE_DRIFT: &str = "engine.drift";

/// Counter: requests whose job panicked on a worker thread; the panic
/// was contained to the request (`TaskPanicked`) and the worker
/// survived. Labels: `op`.
pub const ENGINE_PANICS: &str = "engine.task_panics";

/// Counter: measured kernel work (distance evaluations plus index
/// operations) one request spent in one partition. Labels: `op`,
/// `request`, `algorithm`, plus either `partition` (a detailed counter
/// for one of the request's heaviest partitions) or `partitions` (a
/// per-algorithm rollup of the remaining partitions — emission per
/// request is bounded no matter how many partitions the plan holds).
/// Zero-work partitions are skipped. The detailed counters are the
/// measured side of the predicted-vs-actual cost audit (`dod obs`),
/// against the `predicted_cost` label of `dod.plan.partition` marks.
pub const ENGINE_PARTITION_WORK: &str = "engine.partition.work";

/// Mark: header of a flight-recorder dump, preceding the dumped ring as
/// JSONL. Labels: `reason` (`panic`, `deadline`, `dimension`, …),
/// `dropped` (events lost to write contention), plus the offending
/// request's `request` and `op` when known.
pub const ENGINE_FLIGHT_DUMP: &str = "engine.flight.dump";

/// Counter: points inserted into or removed from the resident dataset
/// by streaming-ingest operations. Labels: `op` (`insert`, `remove`, or
/// `window`), `request`.
pub const ENGINE_CHURN: &str = "engine.churn";

/// Counter: resident points expired by the sliding window. Labels: `op`
/// (the operation whose expiry sweep evicted them), `request`.
pub const ENGINE_WINDOW_EXPIRED: &str = "engine.window.expired";

/// Mark: a staleness probe after a mutation op. Labels: `staleness`
/// (mutations since the last epoch over the epoch's resident size),
/// `threshold`, `refreshed` (whether an epoch swap was triggered).
pub const ENGINE_STALENESS: &str = "engine.staleness";

/// Observation: measured-over-predicted work ratio of one partition,
/// folded from `engine.partition.work` counters against the plan's
/// predicted costs. 1.0 means the Section IV model was exact; the
/// per-algorithm p50 is the calibration error the `bench calibrate`
/// profile is meant to drive toward 1. Labels: `algorithm`.
pub const ENGINE_COST_CALIBRATION: &str = "engine.cost.calibration";

/// Counter: partitions whose measured work exceeded what a *rejected*
/// plan candidate would have cost under the observed per-algorithm
/// measured/predicted ratio — i.e. the planner picked a loser. Labels:
/// `algorithm` (the winner that was picked), `better` (the candidate
/// that measured cheaper).
pub const ENGINE_COST_MISPREDICTS: &str = "engine.cost.mispredicts";

/// Mark: a gross mispredict — the picked algorithm's measured work beat
/// a rejected candidate's estimate by a large factor on a partition with
/// non-trivial work; the flight recorder notes it for post-mortems.
/// Labels: `partition`, `algorithm`, `better`, `ratio`.
pub const ENGINE_COST_GROSS_MISPREDICT: &str = "engine.cost.gross_mispredict";

/// Counter: task-completion records persisted to the checkpoint store.
/// Labels: `stage` (`map` or `reduce`).
pub const MAPREDUCE_CHECKPOINT_WRITE: &str = "mapreduce.checkpoint.write";

/// Counter: tasks restored from the checkpoint store on resume and
/// skipped by the scheduler instead of being re-executed. Labels:
/// `stage`.
pub const MAPREDUCE_CHECKPOINT_SKIP: &str = "mapreduce.checkpoint.skip";

/// Counter: tasks that exhausted their retry budget and were diverted
/// to the dead-letter queue instead of aborting the job. Labels:
/// `stage`.
pub const MAPREDUCE_DLQ_DIVERTED: &str = "mapreduce.dlq.diverted";

/// Counter: dead-letter entries re-driven through the scheduler that
/// completed and were resolved out of the queue. Labels: `stage`.
pub const MAPREDUCE_DLQ_REDRIVEN: &str = "mapreduce.dlq.redriven";

/// Centralized Prometheus `# HELP` text for well-known event names.
///
/// [`crate::prom::render_snapshot`] consults this so every exposition
/// (serve `/metrics`, `metrics` ops, tests) describes a family the same
/// way; unknown names fall back to a generic per-kind description.
pub fn prom_help(event_name: &str) -> Option<&'static str> {
    Some(match event_name {
        n if n == ENGINE_REQUEST => "Engine request latency from dequeue to completion.",
        n if n == ENGINE_QUEUE_DEPTH => "Submission-queue depth sampled at enqueue.",
        n if n == ENGINE_REJECTED => "Requests rejected because the submission queue was full.",
        n if n == ENGINE_DEADLINE_MISSES => "Requests that missed their deadline.",
        n if n == ENGINE_CACHE_HITS => "Requests answered from resident partition state.",
        n if n == ENGINE_PANICS => "Requests whose job panicked on a worker thread.",
        n if n == ENGINE_PARTITION_WORK => {
            "Measured kernel work one request spent in one partition."
        }
        n if n == ENGINE_CHURN => "Points inserted or removed by streaming-ingest operations.",
        n if n == ENGINE_WINDOW_EXPIRED => "Resident points expired by the sliding window.",
        n if n == ENGINE_COST_CALIBRATION => {
            "Measured-over-predicted partition work ratio per algorithm (1.0 = exact model)."
        }
        n if n == ENGINE_COST_MISPREDICTS => {
            "Partitions where a rejected plan candidate measured cheaper than the picked one."
        }
        n if n == MAPREDUCE_CHECKPOINT_WRITE => {
            "Task-completion records persisted to the checkpoint store."
        }
        n if n == MAPREDUCE_CHECKPOINT_SKIP => {
            "Tasks restored from a checkpoint on resume instead of re-executed."
        }
        n if n == MAPREDUCE_DLQ_DIVERTED => {
            "Tasks diverted to the dead-letter queue after exhausting retries."
        }
        n if n == MAPREDUCE_DLQ_REDRIVEN => {
            "Dead-letter entries re-driven through the scheduler and resolved."
        }
        _ => return None,
    })
}

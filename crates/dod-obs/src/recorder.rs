//! The [`Recorder`] sink trait and trivial implementations.

use crate::event::Event;
use std::sync::Arc;

/// A sink for [`Event`]s.
///
/// Recorders must be cheap and thread-safe: `record` is called from
/// worker threads inside the MapReduce task pool. Implementations
/// should not block for long (the `JsonlRecorder` buffers internally).
pub trait Recorder: Send + Sync {
    /// Accepts one event.
    fn record(&self, event: Event);

    /// Flushes any buffered output. Default: no-op.
    fn flush(&self) {}
}

/// Shared recorders forward transparently, so an `Arc<MemoryRecorder>`
/// can be both a fanout sink and queried afterwards.
impl<R: Recorder + ?Sized> Recorder for Arc<R> {
    fn record(&self, event: Event) {
        (**self).record(event);
    }

    fn flush(&self) {
        (**self).flush();
    }
}

/// A recorder that drops every event.
///
/// [`crate::Obs::null`] avoids even constructing events, so this type
/// only matters when a `dyn Recorder` is structurally required (e.g.
/// as one arm of a configuration switch).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _event: Event) {}
}

/// Broadcasts each event to every inner recorder, in order.
pub struct FanoutRecorder {
    sinks: Vec<Box<dyn Recorder>>,
}

impl FanoutRecorder {
    /// Creates a fanout over the given sinks.
    pub fn new(sinks: Vec<Box<dyn Recorder>>) -> Self {
        FanoutRecorder { sinks }
    }
}

impl Recorder for FanoutRecorder {
    fn record(&self, event: Event) {
        if let Some((last, head)) = self.sinks.split_last() {
            for sink in head {
                sink.record(event.clone());
            }
            last.record(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::memory::MemoryRecorder;
    use std::sync::Arc;

    #[test]
    fn fanout_reaches_all_sinks() {
        let a = Arc::new(MemoryRecorder::new());
        let b = Arc::new(MemoryRecorder::new());
        struct Fwd(Arc<MemoryRecorder>);
        impl Recorder for Fwd {
            fn record(&self, event: Event) {
                self.0.record(event);
            }
        }
        let fan = FanoutRecorder::new(vec![
            Box::new(Fwd(Arc::clone(&a))),
            Box::new(Fwd(Arc::clone(&b))),
        ]);
        fan.record(Event::new("e", EventKind::Mark));
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
    }
}

//! Distance-threshold outlier parameters (Definition 2.2).

use crate::error::CoreError;
use crate::metric::Metric;
use serde::{Deserialize, Serialize};

/// Parameters of the distance-threshold outlier definition.
///
/// A point `p` is an outlier iff it has fewer than `k` neighbors within
/// distance `r` (Definition 2.2) under `metric`. Following the seminal
/// definition (Knorr & Ng) and the paper's framework, the point itself is
/// **not** counted as its own neighbor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutlierParams {
    /// Distance threshold `r` (strictly positive).
    pub r: f64,
    /// Neighbor-count threshold `k` (at least 1).
    pub k: usize,
    /// Distance metric (Euclidean unless configured otherwise).
    #[serde(default)]
    pub metric: Metric,
}

impl OutlierParams {
    /// Creates a validated parameter pair under the Euclidean metric.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] if `r` is not a finite
    /// positive number or `k` is zero.
    pub fn new(r: f64, k: usize) -> Result<Self, CoreError> {
        if !(r.is_finite() && r > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "r",
                reason: format!("must be a finite positive number, got {r}"),
            });
        }
        if k == 0 {
            return Err(CoreError::InvalidParameter {
                name: "k",
                reason: "must be at least 1".into(),
            });
        }
        Ok(OutlierParams {
            r,
            k,
            metric: Metric::Euclidean,
        })
    }

    /// Switches the distance metric.
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// The squared distance threshold, precomputed for hot loops.
    #[inline]
    pub fn r_sq(&self) -> f64 {
        self.r * self.r
    }

    /// The Definition 2.1 neighbor predicate under the configured metric.
    ///
    /// Convenient at API boundaries; hot loops should instead build a
    /// [`crate::kernel::NeighborPredicate`] once via
    /// [`OutlierParams::predicate`] so `r²` and the metric dispatch are
    /// not re-derived per pair.
    #[inline]
    pub fn neighbors(&self, a: &[f64], b: &[f64]) -> bool {
        self.metric.within(a, b, self.r)
    }

    /// Builds the once-per-call hot-loop form of the neighbor predicate
    /// (precomputed `r²`, metric dispatch resolved up front).
    #[inline]
    pub fn predicate(&self) -> crate::kernel::NeighborPredicate {
        crate::kernel::NeighborPredicate::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid() {
        let p = OutlierParams::new(5.0, 4).unwrap();
        assert_eq!(p.r, 5.0);
        assert_eq!(p.k, 4);
        assert_eq!(p.r_sq(), 25.0);
    }

    #[test]
    fn rejects_zero_r() {
        assert!(OutlierParams::new(0.0, 4).is_err());
    }

    #[test]
    fn rejects_negative_r() {
        assert!(OutlierParams::new(-1.0, 4).is_err());
    }

    #[test]
    fn rejects_nan_r() {
        assert!(OutlierParams::new(f64::NAN, 4).is_err());
    }

    #[test]
    fn rejects_infinite_r() {
        assert!(OutlierParams::new(f64::INFINITY, 4).is_err());
    }

    #[test]
    fn rejects_zero_k() {
        assert!(OutlierParams::new(1.0, 0).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let p = OutlierParams::new(2.5, 7).unwrap();
        let json = serde_json_like(&p);
        assert!(json.contains("2.5"));
    }

    // Minimal smoke check that the Serialize derive compiles and emits the
    // fields; full serialization is exercised by the mapreduce crate.
    fn serde_json_like(p: &OutlierParams) -> String {
        format!("{{\"r\":{},\"k\":{}}}", p.r, p.k)
    }
}

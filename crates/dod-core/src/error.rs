//! Error type for the core crate.

use std::fmt;

/// Errors produced while constructing or manipulating core types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Two objects that must share a dimensionality did not.
    DimensionMismatch {
        /// Dimensionality expected by the operation.
        expected: usize,
        /// Dimensionality actually supplied.
        actual: usize,
    },
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// An empty input was supplied where at least one element is required.
    Empty(&'static str),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            CoreError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            CoreError::Empty(what) => write!(f, "empty input: {what}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = CoreError::DimensionMismatch {
            expected: 2,
            actual: 3,
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 2, got 3");
    }

    #[test]
    fn display_invalid_parameter() {
        let e = CoreError::InvalidParameter {
            name: "r",
            reason: "must be positive".into(),
        };
        assert_eq!(e.to_string(), "invalid parameter `r`: must be positive");
    }

    #[test]
    fn display_empty() {
        assert_eq!(
            CoreError::Empty("dataset").to_string(),
            "empty input: dataset"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&CoreError::Empty("x"));
    }
}

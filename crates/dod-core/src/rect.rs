//! Hyper-rectangles.
//!
//! Grid cells (Definition 3.1), supporting areas (Definition 3.3), mini
//! buckets and DSHC clusters (Definition 5.1) are all axis-aligned
//! hyper-rectangles. Cells must tile the domain without overlap, so
//! membership is half-open: a point belongs to a rect iff
//! `min[i] <= x[i] < max[i]` in every dimension, except that the rect owning
//! the global domain boundary also accepts `x[i] == max[i]` (see
//! [`Rect::contains_with_upper`]).

use crate::error::CoreError;
use serde::{Deserialize, Serialize};

/// An axis-aligned hyper-rectangle `⟨(low_1, high_1), ..., (low_d, high_d)⟩`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    min: Vec<f64>,
    max: Vec<f64>,
}

impl Rect {
    /// Creates a rectangle from per-dimension bounds.
    ///
    /// # Errors
    /// Returns an error if the bound vectors differ in length, are empty,
    /// contain non-finite values, or `min[i] > max[i]` for some dimension.
    pub fn new(min: Vec<f64>, max: Vec<f64>) -> Result<Self, CoreError> {
        if min.len() != max.len() {
            return Err(CoreError::DimensionMismatch {
                expected: min.len(),
                actual: max.len(),
            });
        }
        if min.is_empty() {
            return Err(CoreError::Empty("rect bounds"));
        }
        for (i, (lo, hi)) in min.iter().zip(max.iter()).enumerate() {
            if !lo.is_finite() || !hi.is_finite() {
                return Err(CoreError::InvalidParameter {
                    name: "bounds",
                    reason: format!("non-finite bound in dimension {i}"),
                });
            }
            if lo > hi {
                return Err(CoreError::InvalidParameter {
                    name: "bounds",
                    reason: format!("min {lo} > max {hi} in dimension {i}"),
                });
            }
        }
        Ok(Rect { min, max })
    }

    /// The bounding box of a set of coordinate slices.
    ///
    /// # Errors
    /// Returns an error if the iterator yields no points.
    pub fn bounding<'a, I>(points: I, dim: usize) -> Result<Self, CoreError>
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let mut min = vec![f64::INFINITY; dim];
        let mut max = vec![f64::NEG_INFINITY; dim];
        let mut any = false;
        for p in points {
            any = true;
            for i in 0..dim {
                min[i] = min[i].min(p[i]);
                max[i] = max[i].max(p[i]);
            }
        }
        if !any {
            return Err(CoreError::Empty("point set for bounding box"));
        }
        Rect::new(min, max)
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.min.len()
    }

    /// Lower bounds.
    pub fn min(&self) -> &[f64] {
        &self.min
    }

    /// Upper bounds.
    pub fn max(&self) -> &[f64] {
        &self.max
    }

    /// Side length in dimension `i`.
    pub fn extent(&self, i: usize) -> f64 {
        self.max[i] - self.min[i]
    }

    /// Volume (the paper's "domain area" `A(D)` in 2-d).
    ///
    /// Degenerate rects (zero extent in some dimension) have volume 0.
    pub fn volume(&self) -> f64 {
        self.min
            .iter()
            .zip(&self.max)
            .map(|(lo, hi)| hi - lo)
            .product()
    }

    /// Half-open membership test: `min[i] <= x[i] < max[i]` for all `i`.
    pub fn contains(&self, x: &[f64]) -> bool {
        debug_assert_eq!(x.len(), self.dim());
        self.min
            .iter()
            .zip(&self.max)
            .zip(x)
            .all(|((lo, hi), v)| *lo <= *v && *v < *hi)
    }

    /// Membership where dimensions listed in `closed_above` also accept
    /// `x[i] == max[i]`.
    ///
    /// Used by grid cells on the upper domain boundary so that every domain
    /// point belongs to exactly one cell.
    pub fn contains_with_upper(&self, x: &[f64], closed_above: impl Fn(usize) -> bool) -> bool {
        debug_assert_eq!(x.len(), self.dim());
        (0..self.dim()).all(|i| {
            let v = x[i];
            v >= self.min[i] && (v < self.max[i] || (closed_above(i) && v == self.max[i]))
        })
    }

    /// Closed membership test: `min[i] <= x[i] <= max[i]` for all `i`.
    pub fn contains_closed(&self, x: &[f64]) -> bool {
        debug_assert_eq!(x.len(), self.dim());
        self.min
            .iter()
            .zip(&self.max)
            .zip(x)
            .all(|((lo, hi), v)| *lo <= *v && *v <= *hi)
    }

    /// The rectangle grown by `r` on every side (the Definition 3.3
    /// supporting-area envelope: `⟨(low_i − r, high_i + r)⟩`).
    pub fn expanded(&self, r: f64) -> Rect {
        Rect {
            min: self.min.iter().map(|v| v - r).collect(),
            max: self.max.iter().map(|v| v + r).collect(),
        }
    }

    /// Squared Euclidean distance from `x` to the closest point of the
    /// rectangle (0 when inside).
    ///
    /// This is the exact predicate behind Definition 3.2: `x` can influence
    /// a core point of cell `C` iff `min_dist(x, C) <= r`.
    pub fn min_dist_sq(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.dim());
        let mut acc = 0.0;
        for (i, &v) in x.iter().enumerate() {
            let d = if v < self.min[i] {
                self.min[i] - v
            } else if v > self.max[i] {
                v - self.max[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }

    /// Whether two rectangles overlap (closed-interval test).
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        (0..self.dim()).all(|i| self.min[i] <= other.max[i] && other.min[i] <= self.max[i])
    }

    /// Whether two rectangles share a (d−1)-dimensional face: they touch or
    /// overlap in one dimension and overlap with positive extent in all
    /// others. Used by DSHC adjacency search.
    pub fn is_adjacent(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        let mut touching_dims = 0;
        for i in 0..self.dim() {
            let overlap_lo = self.min[i].max(other.min[i]);
            let overlap_hi = self.max[i].min(other.max[i]);
            if overlap_lo > overlap_hi {
                return false; // separated in dimension i
            }
            if overlap_lo == overlap_hi {
                touching_dims += 1;
            }
        }
        touching_dims == 1
    }

    /// The smallest rectangle covering both inputs.
    pub fn union(&self, other: &Rect) -> Rect {
        debug_assert_eq!(self.dim(), other.dim());
        Rect {
            min: self
                .min
                .iter()
                .zip(&other.min)
                .map(|(a, b)| a.min(*b))
                .collect(),
            max: self
                .max
                .iter()
                .zip(&other.max)
                .map(|(a, b)| a.max(*b))
                .collect(),
        }
    }

    /// Splits the rectangle at coordinate `at` along dimension `d`,
    /// returning the `(lower, upper)` halves.
    ///
    /// # Panics
    /// Panics if `at` lies outside the rect's extent in dimension `d`.
    pub fn split_at(&self, d: usize, at: f64) -> (Rect, Rect) {
        assert!(
            at >= self.min[d] && at <= self.max[d],
            "split coordinate {at} outside [{}, {}]",
            self.min[d],
            self.max[d]
        );
        let mut lo_max = self.max.clone();
        lo_max[d] = at;
        let mut hi_min = self.min.clone();
        hi_min[d] = at;
        (
            Rect {
                min: self.min.clone(),
                max: lo_max,
            },
            Rect {
                min: hi_min,
                max: self.max.clone(),
            },
        )
    }

    /// Center point of the rectangle.
    pub fn center(&self) -> Vec<f64> {
        self.min
            .iter()
            .zip(&self.max)
            .map(|(lo, hi)| 0.5 * (lo + hi))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rect2(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(vec![x0, y0], vec![x1, y1]).unwrap()
    }

    #[test]
    fn rejects_mismatched_dims() {
        assert!(Rect::new(vec![0.0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn rejects_inverted_bounds() {
        assert!(Rect::new(vec![1.0], vec![0.0]).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(Rect::new(vec![], vec![]).is_err());
    }

    #[test]
    fn rejects_nan() {
        assert!(Rect::new(vec![f64::NAN], vec![1.0]).is_err());
    }

    #[test]
    fn volume_2d() {
        assert_eq!(rect2(0.0, 0.0, 4.0, 2.0).volume(), 8.0);
    }

    #[test]
    fn degenerate_volume_is_zero() {
        assert_eq!(rect2(0.0, 0.0, 0.0, 5.0).volume(), 0.0);
    }

    #[test]
    fn half_open_membership() {
        let r = rect2(0.0, 0.0, 1.0, 1.0);
        assert!(r.contains(&[0.0, 0.0]));
        assert!(r.contains(&[0.5, 0.999]));
        assert!(!r.contains(&[1.0, 0.5])); // upper face excluded
        assert!(!r.contains(&[-0.1, 0.5]));
    }

    #[test]
    fn closed_membership_includes_upper_face() {
        let r = rect2(0.0, 0.0, 1.0, 1.0);
        assert!(r.contains_closed(&[1.0, 1.0]));
        assert!(!r.contains_closed(&[1.0 + 1e-12, 1.0]));
    }

    #[test]
    fn contains_with_upper_boundary() {
        let r = rect2(0.0, 0.0, 1.0, 1.0);
        // Closed above only in dimension 0.
        assert!(r.contains_with_upper(&[1.0, 0.5], |i| i == 0));
        assert!(!r.contains_with_upper(&[0.5, 1.0], |i| i == 0));
    }

    #[test]
    fn expanded_grows_every_side() {
        let r = rect2(0.0, 0.0, 1.0, 1.0).expanded(0.5);
        assert_eq!(r.min(), &[-0.5, -0.5]);
        assert_eq!(r.max(), &[1.5, 1.5]);
    }

    #[test]
    fn min_dist_inside_is_zero() {
        let r = rect2(0.0, 0.0, 2.0, 2.0);
        assert_eq!(r.min_dist_sq(&[1.0, 1.0]), 0.0);
        assert_eq!(r.min_dist_sq(&[0.0, 2.0]), 0.0); // boundary
    }

    #[test]
    fn min_dist_to_corner() {
        let r = rect2(0.0, 0.0, 1.0, 1.0);
        assert_eq!(r.min_dist_sq(&[4.0, 5.0]), 9.0 + 16.0);
    }

    #[test]
    fn min_dist_to_face() {
        let r = rect2(0.0, 0.0, 1.0, 1.0);
        assert_eq!(r.min_dist_sq(&[0.5, 3.0]), 4.0);
    }

    #[test]
    fn intersects_touching_rects() {
        let a = rect2(0.0, 0.0, 1.0, 1.0);
        let b = rect2(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b)); // closed test: shared face counts
        let c = rect2(1.1, 0.0, 2.0, 1.0);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn adjacency_shared_face() {
        let a = rect2(0.0, 0.0, 1.0, 1.0);
        let b = rect2(1.0, 0.0, 2.0, 1.0);
        assert!(a.is_adjacent(&b));
        assert!(b.is_adjacent(&a));
    }

    #[test]
    fn adjacency_corner_touch_is_not_adjacent() {
        let a = rect2(0.0, 0.0, 1.0, 1.0);
        let b = rect2(1.0, 1.0, 2.0, 2.0);
        // touches only at a corner -> degenerate in two dims
        assert!(!a.is_adjacent(&b));
    }

    #[test]
    fn adjacency_overlapping_is_not_adjacent() {
        let a = rect2(0.0, 0.0, 1.0, 1.0);
        let b = rect2(0.5, 0.0, 2.0, 1.0);
        assert!(!a.is_adjacent(&b));
    }

    #[test]
    fn union_covers_both() {
        let a = rect2(0.0, 0.0, 1.0, 1.0);
        let b = rect2(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert_eq!(u.min(), &[0.0, -1.0]);
        assert_eq!(u.max(), &[3.0, 1.0]);
    }

    #[test]
    fn split_preserves_volume() {
        let r = rect2(0.0, 0.0, 4.0, 2.0);
        let (lo, hi) = r.split_at(0, 1.0);
        assert_eq!(lo.volume() + hi.volume(), r.volume());
        assert_eq!(lo.max()[0], 1.0);
        assert_eq!(hi.min()[0], 1.0);
    }

    #[test]
    #[should_panic]
    fn split_outside_panics() {
        rect2(0.0, 0.0, 1.0, 1.0).split_at(0, 2.0);
    }

    #[test]
    fn bounding_box() {
        let pts: Vec<Vec<f64>> = vec![vec![0.0, 5.0], vec![2.0, -1.0], vec![1.0, 3.0]];
        let r = Rect::bounding(pts.iter().map(|p| p.as_slice()), 2).unwrap();
        assert_eq!(r.min(), &[0.0, -1.0]);
        assert_eq!(r.max(), &[2.0, 5.0]);
    }

    #[test]
    fn bounding_empty_errors() {
        let r = Rect::bounding(std::iter::empty(), 2);
        assert!(r.is_err());
    }

    #[test]
    fn center_is_midpoint() {
        assert_eq!(rect2(0.0, 2.0, 4.0, 6.0).center(), vec![2.0, 4.0]);
    }

    proptest! {
        #[test]
        fn expanded_contains_original_points(
            xs in proptest::collection::vec(-100.0f64..100.0, 2),
            r in 0.0f64..10.0,
        ) {
            let rect = Rect::new(vec![-100.0, -100.0], vec![100.0, 100.0]).unwrap();
            let grown = rect.expanded(r);
            prop_assert!(grown.contains_closed(&xs));
        }

        #[test]
        fn min_dist_zero_iff_inside_closed(
            x in -10.0f64..10.0, y in -10.0f64..10.0,
        ) {
            let rect = Rect::new(vec![-1.0, -1.0], vec![1.0, 1.0]).unwrap();
            let inside = rect.contains_closed(&[x, y]);
            prop_assert_eq!(rect.min_dist_sq(&[x, y]) == 0.0, inside);
        }

        #[test]
        fn union_volume_at_least_max(
            a0 in -10.0f64..0.0, a1 in 0.1f64..10.0,
            b0 in -10.0f64..0.0, b1 in 0.1f64..10.0,
        ) {
            let a = Rect::new(vec![a0, a0], vec![a1, a1]).unwrap();
            let b = Rect::new(vec![b0, b0], vec![b1, b1]).unwrap();
            let u = a.union(&b);
            prop_assert!(u.volume() >= a.volume().max(b.volume()) - 1e-9);
        }
    }
}

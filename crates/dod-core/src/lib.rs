//! Core geometry and outlier-semantics types shared by every crate of the
//! DOD workspace.
//!
//! This crate implements Section II of the paper ("Preliminaries") plus the
//! geometric machinery of Section III: d-dimensional points stored in a
//! cache-friendly columnar [`PointSet`], hyper-rectangles ([`Rect`]),
//! equi-width grid specifications ([`grid::GridSpec`]), and the
//! supporting-area calculus (Definitions 3.2 and 3.3) in [`support`].
//!
//! Everything downstream — the centralized detectors in `dod-detect`, the
//! partition planners in `dod-partition`, and the distributed pipelines in
//! `dod` — is built on these types.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod dataset;
pub mod density;
pub mod error;
pub mod grid;
pub mod kernel;
pub mod metric;
pub mod params;
pub mod point;
pub mod rect;
pub mod support;

pub use dataset::{PointId, PointSet};
pub use error::CoreError;
pub use grid::{CellId, GridSpec};
pub use kernel::{active_backend, FilterTile, KernelBackend, NeighborPredicate, TileOutcome};
pub use metric::Metric;
pub use params::OutlierParams;
pub use point::{dist, dist_sq, Point};
pub use rect::Rect;

//! Supporting areas (Definitions 3.2 and 3.3, Lemma 3.1).
//!
//! To detect outliers in a partition in total isolation, the partition must
//! be augmented with every external point within distance `r` of the
//! partition's rectangle — its *support points*. This module provides both
//! the exact Definition 3.2 predicate (distance to the rectangle) and the
//! simplified Definition 3.3 envelope (the r-expanded rectangle), and the
//! routing helper the mappers use to emit core/support records.

use crate::grid::{CellId, GridSpec};
use crate::rect::Rect;

/// Whether `x` is a support point of the partition covered by `rect` under
/// the exact Definition 3.2 predicate: `x` lies outside the partition but
/// within distance `r` of it, so it may be a neighbor of a core point.
///
/// (Strictly, Definition 3.2 also requires an actual core point within `r`;
/// like the paper's implementation we use the geometric superset, which
/// Lemma 3.1 shows is sufficient.)
pub fn is_support_point(rect: &Rect, x: &[f64], r: f64) -> bool {
    if rect.contains(x) {
        return false;
    }
    rect.min_dist_sq(x) <= r * r
}

/// The Definition 3.3 envelope: the r-expansion of the partition rectangle.
/// Every support point of the partition lies inside this envelope, and the
/// envelope is a superset of the exact supporting area.
pub fn support_envelope(rect: &Rect, r: f64) -> Rect {
    rect.expanded(r)
}

/// How a point relates to a partition: the point is a core member, a
/// support (replicated) member, or irrelevant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Membership {
    /// The point lies inside the partition and its outlier status must be
    /// decided there.
    Core,
    /// The point lies within distance `r` outside the partition; it is
    /// replicated so core points can count it as a neighbor.
    Support,
    /// The point cannot influence any core point of the partition.
    None,
}

/// Classifies `x` against a partition rectangle.
pub fn membership(rect: &Rect, x: &[f64], r: f64) -> Membership {
    if rect.contains(x) {
        Membership::Core
    } else if rect.min_dist_sq(x) <= r * r {
        Membership::Support
    } else {
        Membership::None
    }
}

/// The map-side routing decision for one point over a grid partition plan:
/// the single core cell plus every cell for which the point is a support
/// point (the paper's `(cell, "0-p")` and `(cell, "1-p")` records).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Routing {
    /// Cell in which the point is a core point.
    pub core: CellId,
    /// Cells for which the point is a support point.
    pub support: Vec<CellId>,
}

/// Computes the routing of `x` over a grid plan using the exact
/// Definition 3.2 predicate, searching only the cells intersecting the
/// point's `r`-ball bounding box.
pub fn route_on_grid(grid: &GridSpec, x: &[f64], r: f64) -> Routing {
    let core = grid.cell_of(x);
    let ball = Rect::new(
        x.iter().map(|v| v - r).collect(),
        x.iter().map(|v| v + r).collect(),
    )
    .expect("ball bounds are finite");
    let mut support = Vec::new();
    for cid in grid.cells_intersecting(&ball) {
        if cid == core {
            continue;
        }
        if grid.cell_rect(cid).min_dist_sq(x) <= r * r {
            support.push(cid);
        }
    }
    Routing { core, support }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rect2(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(vec![x0, y0], vec![x1, y1]).unwrap()
    }

    #[test]
    fn core_point_is_not_support() {
        let rect = rect2(0.0, 0.0, 1.0, 1.0);
        assert!(!is_support_point(&rect, &[0.5, 0.5], 0.3));
        assert_eq!(membership(&rect, &[0.5, 0.5], 0.3), Membership::Core);
    }

    #[test]
    fn near_outside_point_is_support() {
        let rect = rect2(0.0, 0.0, 1.0, 1.0);
        assert!(is_support_point(&rect, &[1.2, 0.5], 0.3));
        assert_eq!(membership(&rect, &[1.2, 0.5], 0.3), Membership::Support);
    }

    #[test]
    fn far_point_is_none() {
        let rect = rect2(0.0, 0.0, 1.0, 1.0);
        assert!(!is_support_point(&rect, &[2.0, 2.0], 0.3));
        assert_eq!(membership(&rect, &[2.0, 2.0], 0.3), Membership::None);
    }

    #[test]
    fn corner_distance_respected() {
        let rect = rect2(0.0, 0.0, 1.0, 1.0);
        // Point diagonally offset from corner (1,1) by (0.2, 0.2):
        // distance ≈ 0.2828.
        assert!(is_support_point(&rect, &[1.2, 1.2], 0.29));
        assert!(!is_support_point(&rect, &[1.2, 1.2], 0.28));
    }

    #[test]
    fn envelope_is_expansion() {
        let rect = rect2(0.0, 0.0, 1.0, 1.0);
        let env = support_envelope(&rect, 0.5);
        assert_eq!(env.min(), &[-0.5, -0.5]);
        assert_eq!(env.max(), &[1.5, 1.5]);
    }

    #[test]
    fn routing_interior_point_no_support() {
        let g = GridSpec::uniform(rect2(0.0, 0.0, 4.0, 4.0), 4).unwrap();
        // Deep inside cell (0,0), far from every boundary.
        let r = route_on_grid(&g, &[0.5, 0.5], 0.2);
        assert_eq!(r.core, g.cell_of(&[0.5, 0.5]));
        assert!(r.support.is_empty());
    }

    #[test]
    fn routing_edge_point_supports_neighbor() {
        let g = GridSpec::uniform(rect2(0.0, 0.0, 4.0, 4.0), 4).unwrap();
        // Just left of the x=1 boundary: supports the cell to the right.
        let r = route_on_grid(&g, &[0.95, 0.5], 0.2);
        assert_eq!(r.support, vec![g.cell_of(&[1.05, 0.5])]);
    }

    #[test]
    fn routing_corner_point_supports_three_cells() {
        let g = GridSpec::uniform(rect2(0.0, 0.0, 4.0, 4.0), 4).unwrap();
        // Near the interior corner (1,1): supports E, N and NE cells.
        let r = route_on_grid(&g, &[0.95, 0.95], 0.2);
        assert_eq!(r.support.len(), 3);
    }

    #[test]
    fn routing_near_corner_but_outside_diagonal_reach() {
        let g = GridSpec::uniform(rect2(0.0, 0.0, 4.0, 4.0), 4).unwrap();
        // 0.08 from each axis boundary; diagonal distance to the NE cell is
        // sqrt(2)*0.08 ≈ 0.113 > r = 0.1, so only E and N are supported.
        let r = route_on_grid(&g, &[0.92, 0.92], 0.1);
        assert_eq!(r.support.len(), 2);
    }

    proptest! {
        #[test]
        fn membership_partitions_space(
            x in -2.0f64..3.0, y in -2.0f64..3.0, r in 0.01f64..1.0,
        ) {
            let rect = rect2(0.0, 0.0, 1.0, 1.0);
            let m = membership(&rect, &[x, y], r);
            // Exactly one of the three classifications applies.
            match m {
                Membership::Core => prop_assert!(rect.contains(&[x, y])),
                Membership::Support => {
                    prop_assert!(!rect.contains(&[x, y]));
                    prop_assert!(rect.min_dist_sq(&[x, y]) <= r * r);
                }
                Membership::None => {
                    prop_assert!(rect.min_dist_sq(&[x, y]) > r * r);
                }
            }
        }

        #[test]
        fn every_support_cell_is_within_r(
            x in 0.0f64..=4.0, y in 0.0f64..=4.0, r in 0.01f64..1.5,
            n in 1usize..6,
        ) {
            let g = GridSpec::uniform(rect2(0.0, 0.0, 4.0, 4.0), n).unwrap();
            let routing = route_on_grid(&g, &[x, y], r);
            prop_assert_eq!(routing.core, g.cell_of(&[x, y]));
            for cid in &routing.support {
                prop_assert!(*cid != routing.core);
                let rect = g.cell_rect(*cid);
                prop_assert!(rect.min_dist_sq(&[x, y]) <= r * r + 1e-12);
            }
            // Completeness: every other cell within r is in the list.
            for cid in 0..g.num_cells() {
                if cid == routing.core { continue; }
                let within = g.cell_rect(cid).min_dist_sq(&[x, y]) <= r * r;
                prop_assert_eq!(routing.support.contains(&cid), within);
            }
        }
    }
}

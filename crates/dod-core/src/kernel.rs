//! Vectorizable neighbor-count kernels over contiguous coordinate tiles.
//!
//! Every detector ultimately reduces to the same primitive: given a query
//! point `q`, count how many candidate points lie within distance `r`,
//! stopping as soon as `k` neighbors are found. The one-pair-at-a-time
//! form of that primitive — `Metric::within` behind a bounds-checked
//! `PointSet::point(i)` — is the per-pair cost `Cd` the paper's Lemmas
//! 4.1/4.2 model, so shrinking it speeds up *every* tactic the
//! multi-tactic optimizer can choose.
//!
//! This module replaces the pair loop with **tile** kernels:
//!
//! * a [`NeighborPredicate`] is built **once per `detect`/`score_batch`
//!   call** from [`OutlierParams`], hoisting the `r²` computation and the
//!   metric-variant dispatch out of the hot loop;
//! * [`NeighborPredicate::count_within_tile`] scans a *contiguous
//!   columnar block* of candidate coordinates (a tile) with
//!   slice-pattern chunking, so the compiler proves away every
//!   per-element bounds check and can autovectorize the distance math;
//! * all three metrics get kernels monomorphized per dimension for
//!   `d = 1..4` (the common spatial cases), falling back to 4-way
//!   unrolled loops with incremental partial-distance early-abandon for
//!   higher dimensions.
//!
//! Tiles are scanned in cache-sized blocks of [`BLOCK_POINTS`] points.
//! Within a block the neighbor test is branchless (a compare-and-add per
//! point); the early-exit check runs once per block, and when the block
//! that crosses the `need` threshold is found it is re-scanned one point
//! at a time so the reported [`TileOutcome::scanned`] is **exactly** what
//! a scalar pair loop would have examined. Counting is order-independent,
//! so detection output is bit-identical to the scalar path.

use crate::metric::Metric;
use crate::params::OutlierParams;

mod filter;
#[cfg(feature = "simd")]
mod simd;

pub use filter::FilterTile;

/// Identifies which kernel implementation services tile scans.
///
/// The backend is resolved once per process from the compile-time `simd`
/// cargo feature plus runtime CPU detection; every backend produces
/// bit-identical [`TileOutcome`]s (counts *and* early-exit positions), so
/// the choice is purely a throughput decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// Portable autovectorized scalar tiles — always available, and the
    /// oracle every other backend is tested against.
    Scalar,
    /// Explicit AVX2 `std::arch` kernels (x86-64, 4 `f64` lanes per
    /// instruction; requires the `simd` feature and runtime support).
    Avx2,
    /// Explicit NEON `std::arch` kernels (aarch64, 2 `f64` lanes per
    /// instruction; requires the `simd` feature).
    Neon,
}

impl KernelBackend {
    /// Stable lower-case name used by the benchmark and calibration
    /// JSON schemas (`backend` fields).
    pub fn name(&self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Avx2 => "avx2",
            KernelBackend::Neon => "neon",
        }
    }
}

/// The kernel backend active in this process.
///
/// With the `simd` cargo feature enabled this runtime-detects the CPU
/// (`is_x86_feature_detected!("avx2")` on x86-64; NEON is baseline on
/// aarch64) and falls back to [`KernelBackend::Scalar`] when the
/// instruction set is absent. Without the feature it is always `Scalar`.
pub fn active_backend() -> KernelBackend {
    #[cfg(feature = "simd")]
    {
        simd::detect()
    }
    #[cfg(not(feature = "simd"))]
    {
        KernelBackend::Scalar
    }
}

/// Number of points per cache block inside a tile scan.
///
/// 32 points × 4 dims × 8 bytes = 1 KiB worst case for the monomorphized
/// kernels — comfortably inside L1 while giving the autovectorizer a
/// long, branch-free inner loop.
pub const BLOCK_POINTS: usize = 32;

/// Result of scanning one tile.
///
/// `found` is capped at the requested `need`; the scan early-exits (at
/// exact scalar-equivalent position) as soon as the cap is reached, so
/// `found >= need` signals the early exit and `found < need` means the
/// whole tile was scanned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileOutcome {
    /// Number of neighbors found, capped at the requested `need`.
    pub found: usize,
    /// Number of candidate points examined — equal to the tile's point
    /// count unless the scan early-exited. Matches what a scalar
    /// one-pair-at-a-time loop over the same tile would have examined,
    /// so it can be charged directly to `distance_evaluations`.
    pub scanned: usize,
}

impl TileOutcome {
    /// Whether the scan stopped early because `need` was reached.
    #[inline]
    pub fn reached(&self, need: usize) -> bool {
        self.found >= need
    }
}

/// The Definition 2.1 neighbor predicate with everything derivable from
/// [`OutlierParams`] precomputed: the squared threshold `r²` and the
/// metric variant, resolved **once per call** instead of once per pair.
///
/// Build one at the top of a `detect`/`score_batch` implementation and
/// feed it contiguous coordinate tiles; never call [`Metric::within`]
/// from a hot loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeighborPredicate {
    metric: Metric,
    r: f64,
    r_sq: f64,
}

impl NeighborPredicate {
    /// Builds the predicate from validated parameters.
    #[inline]
    pub fn new(params: OutlierParams) -> Self {
        Self::with_metric(params.metric, params.r)
    }

    /// Builds the predicate from a metric and threshold directly.
    #[inline]
    pub fn with_metric(metric: Metric, r: f64) -> Self {
        NeighborPredicate {
            metric,
            r,
            r_sq: r * r,
        }
    }

    /// The distance threshold `r`.
    #[inline]
    pub fn r(&self) -> f64 {
        self.r
    }

    /// The precomputed squared threshold `r²`.
    #[inline]
    pub fn r_sq(&self) -> f64 {
        self.r_sq
    }

    /// The metric the predicate evaluates distances under.
    #[inline]
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Single-pair neighbor test — identical to
    /// [`Metric::within`] but with `r²` precomputed.
    #[inline]
    pub fn within(&self, a: &[f64], b: &[f64]) -> bool {
        match self.metric {
            Metric::Euclidean => crate::point::dist_sq(a, b) <= self.r_sq,
            _ => self.metric.dist(a, b) <= self.r,
        }
    }

    /// Counts the points of `tile` within `r` of `query`, early-exiting
    /// once `need` neighbors are found.
    ///
    /// `tile` is a contiguous columnar block of candidate coordinates:
    /// `tile.len()` must be a multiple of `query.len()` (one
    /// `query.len()`-sized chunk per point). The scan is
    /// order-independent in its count, and `scanned` reports exactly the
    /// number of points a scalar loop would have examined before
    /// stopping, so callers can charge it to their work counters
    /// unchanged.
    pub fn count_within_tile(&self, query: &[f64], tile: &[f64], need: usize) -> TileOutcome {
        let dim = query.len();
        debug_assert!(dim > 0, "query must have at least one dimension");
        debug_assert_eq!(tile.len() % dim, 0, "tile is not a whole number of points");
        if need == 0 {
            return TileOutcome {
                found: 0,
                scanned: 0,
            };
        }
        #[cfg(feature = "simd")]
        if let Some(out) = simd::count_within_tile(self, query, tile, dim, need) {
            return out;
        }
        self.scalar_tiles(query, tile, dim, need)
    }

    /// The portable scalar tile kernels, bypassing any SIMD backend.
    ///
    /// Semantically identical to [`Self::count_within_tile`]; public so
    /// benchmarks can report a scalar baseline row and equivalence tests
    /// can compare backends explicitly even in `simd` builds.
    pub fn count_within_tile_scalar(
        &self,
        query: &[f64],
        tile: &[f64],
        need: usize,
    ) -> TileOutcome {
        let dim = query.len();
        debug_assert!(dim > 0, "query must have at least one dimension");
        debug_assert_eq!(tile.len() % dim, 0, "tile is not a whole number of points");
        if need == 0 {
            return TileOutcome {
                found: 0,
                scanned: 0,
            };
        }
        self.scalar_tiles(query, tile, dim, need)
    }

    /// Counts neighbors of several queries in one pass over `tile`,
    /// register-blocking 4 queries per tile load so the tile's memory
    /// traffic is amortized across the batch.
    ///
    /// `queries` is `needs.len()` query points stored contiguously
    /// (`queries.len() / needs.len()` dimensions each); `needs[i]` is the
    /// per-query early-exit cap. Each returned [`TileOutcome`] is
    /// bit-identical — count *and* `scanned` early-exit position — to
    /// calling [`Self::count_within_tile`] for that query alone.
    ///
    /// # Panics
    /// If `queries.len()` is not a whole number of `needs.len()`-sized
    /// points, or the implied dimension is zero.
    pub fn count_within_tile_multi(
        &self,
        queries: &[f64],
        tile: &[f64],
        needs: &[usize],
    ) -> Vec<TileOutcome> {
        let nq = needs.len();
        if nq == 0 {
            return Vec::new();
        }
        assert_eq!(
            queries.len() % nq,
            0,
            "queries must hold one point per need"
        );
        let dim = queries.len() / nq;
        assert!(dim > 0, "queries must have at least one dimension");
        debug_assert_eq!(tile.len() % dim, 0, "tile is not a whole number of points");
        #[cfg(feature = "simd")]
        if let Some(out) = simd::count_within_tile_multi(self, queries, tile, needs, dim) {
            return out;
        }
        needs
            .iter()
            .enumerate()
            .map(|(qi, &need)| {
                self.count_within_tile(&queries[qi * dim..(qi + 1) * dim], tile, need)
            })
            .collect()
    }

    /// Dispatches to the monomorphized scalar kernel for `(metric, dim)`.
    #[inline]
    fn scalar_tiles(&self, query: &[f64], tile: &[f64], dim: usize, need: usize) -> TileOutcome {
        match (self.metric, dim) {
            (Metric::Euclidean, 1) => euclid_fixed::<1>(query, tile, self.r_sq, need),
            (Metric::Euclidean, 2) => euclid_fixed::<2>(query, tile, self.r_sq, need),
            (Metric::Euclidean, 3) => euclid_fixed::<3>(query, tile, self.r_sq, need),
            (Metric::Euclidean, 4) => euclid_fixed::<4>(query, tile, self.r_sq, need),
            (Metric::Euclidean, _) => euclid_generic(query, tile, dim, self.r_sq, need),
            (Metric::Manhattan, 1) => manhattan_fixed::<1>(query, tile, self.r, need),
            (Metric::Manhattan, 2) => manhattan_fixed::<2>(query, tile, self.r, need),
            (Metric::Manhattan, 3) => manhattan_fixed::<3>(query, tile, self.r, need),
            (Metric::Manhattan, 4) => manhattan_fixed::<4>(query, tile, self.r, need),
            (Metric::Manhattan, _) => manhattan_tile(query, tile, dim, self.r, need),
            (Metric::Chebyshev, 1) => chebyshev_fixed::<1>(query, tile, self.r, need),
            (Metric::Chebyshev, 2) => chebyshev_fixed::<2>(query, tile, self.r, need),
            (Metric::Chebyshev, 3) => chebyshev_fixed::<3>(query, tile, self.r, need),
            (Metric::Chebyshev, 4) => chebyshev_fixed::<4>(query, tile, self.r, need),
            (Metric::Chebyshev, _) => chebyshev_tile(query, tile, dim, self.r, need),
        }
    }
}

/// The shared blockwise tile loop behind every monomorphized
/// small-dimension kernel.
///
/// The tile is consumed in [`BLOCK_POINTS`]-point blocks. Each block is
/// counted branchlessly (fixed-size array patterns, no bounds checks, no
/// data-dependent branches), then the running total is checked once. The
/// block that crosses `need` is re-scanned a point at a time to recover
/// the exact scalar early-exit position. `dist` must accumulate
/// dimensions in ascending order so the fixed kernels stay bit-identical
/// to the scalar `Metric` loops.
#[inline(always)]
fn tile_fixed<const D: usize>(
    q: &[f64],
    tile: &[f64],
    thresh: f64,
    need: usize,
    dist: impl Fn(&[f64; D], &[f64; D]) -> f64,
) -> TileOutcome {
    let q: &[f64; D] = q.try_into().expect("query dimension matches kernel");
    let mut found = 0usize;
    let mut scanned = 0usize;
    for block in tile.chunks(D * BLOCK_POINTS) {
        let mut hits = 0usize;
        for p in block.chunks_exact(D) {
            let p: &[f64; D] = p.try_into().expect("chunks_exact yields D-sized chunks");
            hits += usize::from(dist(p, q) <= thresh);
        }
        if found + hits >= need {
            // Exact early-exit position: replay this block scalar-style.
            for (i, p) in block.chunks_exact(D).enumerate() {
                let p: &[f64; D] = p.try_into().expect("chunks_exact yields D-sized chunks");
                if dist(p, q) <= thresh {
                    found += 1;
                    if found >= need {
                        return TileOutcome {
                            found,
                            scanned: scanned + i + 1,
                        };
                    }
                }
            }
            unreachable!("blockwise count promised `need` is reached in this block");
        }
        found += hits;
        scanned += block.len() / D;
    }
    TileOutcome { found, scanned }
}

/// Monomorphized Euclidean kernel for small fixed dimensions.
fn euclid_fixed<const D: usize>(q: &[f64], tile: &[f64], r_sq: f64, need: usize) -> TileOutcome {
    tile_fixed::<D>(q, tile, r_sq, need, |p, q| {
        let mut acc = 0.0;
        for d in 0..D {
            let t = p[d] - q[d];
            acc += t * t;
        }
        acc
    })
}

/// Monomorphized `L1` kernel for small fixed dimensions.
fn manhattan_fixed<const D: usize>(q: &[f64], tile: &[f64], r: f64, need: usize) -> TileOutcome {
    tile_fixed::<D>(q, tile, r, need, |p, q| {
        let mut acc = 0.0;
        for d in 0..D {
            acc += (p[d] - q[d]).abs();
        }
        acc
    })
}

/// Monomorphized `L∞` kernel for small fixed dimensions.
fn chebyshev_fixed<const D: usize>(q: &[f64], tile: &[f64], r: f64, need: usize) -> TileOutcome {
    tile_fixed::<D>(q, tile, r, need, |p, q| {
        let mut m = 0.0f64;
        for d in 0..D {
            m = m.max((p[d] - q[d]).abs());
        }
        m
    })
}

/// Generic Euclidean kernel: 4-accumulator unrolled over the dimension
/// axis with incremental partial-distance early-abandon.
///
/// Partial sums of squares only grow, so once the accumulated prefix
/// exceeds `r²` the point cannot be a neighbor and the remaining
/// dimensions are skipped — the classic early-abandon rule, sound for
/// any dimension order.
fn euclid_generic(q: &[f64], tile: &[f64], dim: usize, r_sq: f64, need: usize) -> TileOutcome {
    let mut found = 0usize;
    for (i, p) in tile.chunks_exact(dim).enumerate() {
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let mut abandoned = false;
        for (pc, qc) in p.chunks_exact(4).zip(q.chunks_exact(4)) {
            let d0 = pc[0] - qc[0];
            let d1 = pc[1] - qc[1];
            let d2 = pc[2] - qc[2];
            let d3 = pc[3] - qc[3];
            a0 += d0 * d0;
            a1 += d1 * d1;
            a2 += d2 * d2;
            a3 += d3 * d3;
            if a0 + a1 + a2 + a3 > r_sq {
                abandoned = true;
                break;
            }
        }
        if abandoned {
            continue;
        }
        let mut acc = (a0 + a1) + (a2 + a3);
        for (x, y) in p
            .chunks_exact(4)
            .remainder()
            .iter()
            .zip(q.chunks_exact(4).remainder())
        {
            let t = x - y;
            acc += t * t;
        }
        if acc <= r_sq {
            found += 1;
            if found >= need {
                return TileOutcome {
                    found,
                    scanned: i + 1,
                };
            }
        }
    }
    TileOutcome {
        found,
        scanned: tile.len() / dim,
    }
}

/// Generic `L1` kernel with the same unroll-and-abandon structure as
/// [`euclid_generic`] (partial sums of absolute gaps only grow).
fn manhattan_tile(q: &[f64], tile: &[f64], dim: usize, r: f64, need: usize) -> TileOutcome {
    let mut found = 0usize;
    for (i, p) in tile.chunks_exact(dim).enumerate() {
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let mut abandoned = false;
        for (pc, qc) in p.chunks_exact(4).zip(q.chunks_exact(4)) {
            a0 += (pc[0] - qc[0]).abs();
            a1 += (pc[1] - qc[1]).abs();
            a2 += (pc[2] - qc[2]).abs();
            a3 += (pc[3] - qc[3]).abs();
            if a0 + a1 + a2 + a3 > r {
                abandoned = true;
                break;
            }
        }
        if abandoned {
            continue;
        }
        let mut acc = (a0 + a1) + (a2 + a3);
        for (x, y) in p
            .chunks_exact(4)
            .remainder()
            .iter()
            .zip(q.chunks_exact(4).remainder())
        {
            acc += (x - y).abs();
        }
        if acc <= r {
            found += 1;
            if found >= need {
                return TileOutcome {
                    found,
                    scanned: i + 1,
                };
            }
        }
    }
    TileOutcome {
        found,
        scanned: tile.len() / dim,
    }
}

/// Generic `L∞` kernel: the running maximum only grows, so any
/// per-dimension gap above `r` abandons the point immediately.
fn chebyshev_tile(q: &[f64], tile: &[f64], dim: usize, r: f64, need: usize) -> TileOutcome {
    let mut found = 0usize;
    for (i, p) in tile.chunks_exact(dim).enumerate() {
        let mut m = 0.0f64;
        let mut abandoned = false;
        for (pc, qc) in p.chunks_exact(4).zip(q.chunks_exact(4)) {
            let d0 = (pc[0] - qc[0]).abs();
            let d1 = (pc[1] - qc[1]).abs();
            let d2 = (pc[2] - qc[2]).abs();
            let d3 = (pc[3] - qc[3]).abs();
            m = m.max(d0).max(d1).max(d2).max(d3);
            if m > r {
                abandoned = true;
                break;
            }
        }
        if abandoned {
            continue;
        }
        for (x, y) in p
            .chunks_exact(4)
            .remainder()
            .iter()
            .zip(q.chunks_exact(4).remainder())
        {
            m = m.max((x - y).abs());
        }
        if m <= r {
            found += 1;
            if found >= need {
                return TileOutcome {
                    found,
                    scanned: i + 1,
                };
            }
        }
    }
    TileOutcome {
        found,
        scanned: tile.len() / dim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const METRICS: [Metric; 3] = [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev];

    /// One-pair-at-a-time oracle, the pre-kernel hot path.
    fn scalar_scan(metric: Metric, q: &[f64], tile: &[f64], r: f64, need: usize) -> TileOutcome {
        let dim = q.len();
        let mut found = 0usize;
        let mut scanned = 0usize;
        for p in tile.chunks_exact(dim) {
            if need == 0 {
                break;
            }
            scanned += 1;
            if metric.within(q, p, r) {
                found += 1;
                if found >= need {
                    break;
                }
            }
        }
        if need == 0 {
            scanned = 0;
        }
        TileOutcome { found, scanned }
    }

    fn pred(metric: Metric, r: f64) -> NeighborPredicate {
        NeighborPredicate::with_metric(metric, r)
    }

    #[test]
    fn empty_tile() {
        for m in METRICS {
            let out = pred(m, 1.0).count_within_tile(&[0.0, 0.0], &[], 3);
            assert_eq!(
                out,
                TileOutcome {
                    found: 0,
                    scanned: 0
                }
            );
            assert!(!out.reached(3));
        }
    }

    #[test]
    fn need_zero_scans_nothing() {
        for m in METRICS {
            let out = pred(m, 1.0).count_within_tile(&[0.0], &[0.0, 1.0, 2.0], 0);
            assert_eq!(out.found, 0);
            assert_eq!(out.scanned, 0);
            assert!(out.reached(0));
        }
    }

    #[test]
    fn exact_early_exit_position_matches_scalar() {
        // 1-d points 0, 10, 1, 20, 2, 30 with r=5: neighbors of 0 are at
        // positions 0, 2, 4. Asking for 2 must stop after scanning 3.
        let tile = [0.0, 10.0, 1.0, 20.0, 2.0, 30.0];
        for m in METRICS {
            let out = pred(m, 5.0).count_within_tile(&[0.0], &tile, 2);
            assert_eq!(out.found, 2, "{m:?}");
            assert_eq!(out.scanned, 3, "{m:?}");
            assert!(out.reached(2));
        }
    }

    #[test]
    fn exhausted_counts_everything() {
        let tile = [0.0, 10.0, 1.0, 20.0, 2.0, 30.0];
        for m in METRICS {
            let out = pred(m, 5.0).count_within_tile(&[0.0], &tile, 100);
            assert_eq!(out.found, 3, "{m:?}");
            assert_eq!(out.scanned, 6, "{m:?}");
            assert!(!out.reached(100));
        }
    }

    #[test]
    fn boundary_distance_is_inclusive() {
        // Definition 2.1 uses <=; the kernels must agree on the boundary.
        let out = pred(Metric::Euclidean, 5.0).count_within_tile(&[0.0, 0.0], &[3.0, 4.0], 1);
        assert_eq!(out.found, 1);
        let out = pred(Metric::Manhattan, 7.0).count_within_tile(&[0.0, 0.0], &[3.0, 4.0], 1);
        assert_eq!(out.found, 1);
        let out = pred(Metric::Chebyshev, 4.0).count_within_tile(&[0.0, 0.0], &[3.0, 4.0], 1);
        assert_eq!(out.found, 1);
    }

    #[test]
    fn duplicate_points_all_count() {
        let q = [1.0, 2.0, 3.0];
        let tile: Vec<f64> = q.repeat(70); // 70 copies, spans block boundary
        for m in METRICS {
            let out = pred(m, 0.5).count_within_tile(&q, &tile, usize::MAX);
            assert_eq!(out.found, 70, "{m:?}");
            let out = pred(m, 0.5).count_within_tile(&q, &tile, 41);
            assert_eq!(out.found, 41, "{m:?}");
            assert_eq!(out.scanned, 41, "{m:?}");
        }
    }

    #[test]
    fn within_matches_metric_within() {
        let a = [0.0, 0.0, 0.0];
        let b = [1.0, 2.0, 2.0];
        for m in METRICS {
            for r in [0.5, 2.9, 3.0, 5.0] {
                assert_eq!(
                    pred(m, r).within(&a, &b),
                    m.within(&a, &b, r),
                    "{m:?} r={r}"
                );
            }
        }
    }

    #[test]
    fn high_dimensional_early_abandon_is_exact() {
        // d = 12 exercises the generic kernels' abandon path: the first
        // four dimensions already exceed r for the far point.
        let q = vec![0.0; 12];
        let mut tile = vec![0.1; 12]; // near point
        tile.extend(vec![100.0; 12]); // far point, abandoned early
        tile.extend(vec![0.2; 12]); // near point
        for m in METRICS {
            let out = pred(m, 3.0).count_within_tile(&q, &tile, usize::MAX);
            assert_eq!(out.found, 2, "{m:?}");
            assert_eq!(out.scanned, 3, "{m:?}");
        }
    }

    #[test]
    fn multi_with_no_queries_is_empty() {
        let p = pred(Metric::Euclidean, 1.0);
        assert!(p.count_within_tile_multi(&[], &[1.0, 2.0], &[]).is_empty());
    }

    #[test]
    fn multi_need_zero_queries_scan_nothing() {
        let p = pred(Metric::Euclidean, 1.0);
        let tile = [0.0, 0.5, 9.0];
        let out = p.count_within_tile_multi(&[0.0, 9.0], &tile, &[0, 3]);
        assert_eq!(
            out[0],
            TileOutcome {
                found: 0,
                scanned: 0
            }
        );
        assert_eq!(
            out[1],
            TileOutcome {
                found: 1,
                scanned: 3
            }
        );
    }

    #[test]
    fn multi_early_exits_match_single_query_positions() {
        // Two queries with different crossing points in the same tile.
        let tile = [0.0, 10.0, 1.0, 20.0, 2.0, 30.0];
        for m in METRICS {
            let p = pred(m, 5.0);
            let needs = [2usize, 1];
            let multi = p.count_within_tile_multi(&[0.0, 20.0], &tile, &needs);
            for (qi, q) in [[0.0], [20.0]].iter().enumerate() {
                let single = p.count_within_tile(q, &tile, needs[qi]);
                assert_eq!(multi[qi], single, "{m:?} q{qi}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]
        #[test]
        fn multi_query_matches_per_query_and_scalar(
            dim in 1usize..9,
            n_points in 0usize..70,
            nq in 1usize..10,
            needs_seed in proptest::collection::vec(0usize..8, 10),
            r in 0.1f64..4.0,
            seed_coords in proptest::collection::vec(-3.0f64..3.0, 1..500),
            metric_sel in 0usize..3,
        ) {
            let metric = METRICS[metric_sel];
            let p = pred(metric, r);
            let want = dim * (n_points + nq);
            let coords: Vec<f64> = (0..want)
                .map(|i| seed_coords[i % seed_coords.len()])
                .collect();
            let (queries, tile) = coords.split_at(dim * nq);
            let needs: Vec<usize> = needs_seed[..nq].to_vec();
            let multi = p.count_within_tile_multi(queries, tile, &needs);
            prop_assert_eq!(multi.len(), nq);
            for qi in 0..nq {
                let q = &queries[qi * dim..(qi + 1) * dim];
                let single = p.count_within_tile(q, tile, needs[qi]);
                let scalar = scalar_scan(metric, q, tile, r, needs[qi]);
                prop_assert_eq!(multi[qi], single, "vs single: {:?} dim {} q{}", metric, dim, qi);
                prop_assert_eq!(multi[qi], scalar, "vs scalar: {:?} dim {} q{}", metric, dim, qi);
            }
        }

        #[test]
        fn tile_scan_matches_scalar_scan(
            dim in 1usize..9,
            n_points in 0usize..65,
            need in 0usize..8,
            r in 0.1f64..4.0,
            seed_coords in proptest::collection::vec(-3.0f64..3.0, 0..600),
            metric_sel in 0usize..3,
        ) {
            let metric = METRICS[metric_sel];
            let want = dim * (n_points + 1);
            // Recycle the generated coordinate pool to the needed length.
            let coords: Vec<f64> = (0..want)
                .map(|i| if seed_coords.is_empty() { 0.5 } else { seed_coords[i % seed_coords.len()] })
                .collect();
            let (q, tile) = coords.split_at(dim);
            let kernel = pred(metric, r).count_within_tile(q, tile, need);
            let scalar = scalar_scan(metric, q, tile, r, need);
            prop_assert_eq!(kernel, scalar, "metric {:?} dim {} need {}", metric, dim, need);
        }

        #[test]
        fn k_boundary_cases_match_scalar(
            dim in 1usize..6,
            n_near in 0usize..40,
            n_far in 0usize..40,
            metric_sel in 0usize..3,
        ) {
            // Exactly n_near neighbors exist; probe need at the boundary,
            // one below, and one above.
            let metric = METRICS[metric_sel];
            let q = vec![0.0; dim];
            let mut tile = Vec::new();
            for i in 0..(n_near + n_far) {
                // Far points first so early exit must skip past them.
                let v = if i >= n_far { 0.01 } else { 50.0 };
                tile.extend(std::iter::repeat_n(v, dim));
            }
            for need in [n_near.saturating_sub(1).max(1), n_near.max(1), n_near + 1] {
                let kernel = pred(metric, 1.0).count_within_tile(&q, &tile, need);
                let scalar = scalar_scan(metric, &q, &tile, 1.0, need);
                prop_assert_eq!(kernel, scalar);
            }
        }
    }
}

//! Density measures (Section IV).
//!
//! The paper defines the density of a dataset or partition as "the ratio of
//! data cardinality to the domain area covered by the data". Density is the
//! quantity that drives both the cost models (Lemmas 4.1/4.2) and the DSHC
//! clustering criterion (Definition 5.2).

use crate::rect::Rect;

/// Density of `n` points over the volume of `area`: `n / volume`.
///
/// Degenerate areas (zero volume) yield `f64::INFINITY` when `n > 0`, and
/// `0.0` when `n == 0`; both conventions keep comparisons well-defined for
/// duplicated points or single-point partitions.
pub fn density(n: usize, area: &Rect) -> f64 {
    let v = area.volume();
    if v == 0.0 {
        if n == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        n as f64 / v
    }
}

/// The paper's Figure 5 "density measure": `n·A(p) / A(D)` where `A(p)` is
/// the area of the r-ball. It expresses the expected number of neighbors
/// of a point under uniformity, normalized by `k` elsewhere; here it is
/// kept raw so the benchmark sweep can report the same x-axis as Figure 5.
pub fn density_measure_2d(n: usize, area: &Rect, r: f64) -> f64 {
    let v = area.volume();
    if v == 0.0 {
        return f64::INFINITY;
    }
    n as f64 * std::f64::consts::PI * r * r / v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect2(w: f64, h: f64) -> Rect {
        Rect::new(vec![0.0, 0.0], vec![w, h]).unwrap()
    }

    #[test]
    fn basic_density() {
        assert_eq!(density(100, &rect2(10.0, 10.0)), 1.0);
        assert_eq!(density(100, &rect2(5.0, 5.0)), 4.0);
    }

    #[test]
    fn quarter_domain_is_four_times_denser() {
        // The paper's D-Dense covers 1/4 of D-Sparse's area at equal
        // cardinality, hence 4x the density.
        let sparse = density(10_000, &rect2(200.0, 200.0));
        let dense = density(10_000, &rect2(100.0, 100.0));
        assert!((dense / sparse - 4.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_area() {
        assert_eq!(density(0, &rect2(0.0, 5.0)), 0.0);
        assert_eq!(density(3, &rect2(0.0, 5.0)), f64::INFINITY);
    }

    #[test]
    fn density_measure_scales_with_r_squared() {
        let a = rect2(100.0, 100.0);
        let m1 = density_measure_2d(1000, &a, 1.0);
        let m2 = density_measure_2d(1000, &a, 2.0);
        assert!((m2 / m1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn density_measure_degenerate() {
        assert_eq!(density_measure_2d(5, &rect2(0.0, 1.0), 1.0), f64::INFINITY);
    }
}

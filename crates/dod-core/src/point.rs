//! Points and distance functions.
//!
//! The paper (Definition 2.1) assumes a distance function `dist(pi, pj)`;
//! like the original evaluation we use the Euclidean metric. Hot loops work
//! on `&[f64]` coordinate slices (borrowed from a columnar
//! [`crate::PointSet`]) so no per-point allocation happens during detection.

use serde::{Deserialize, Serialize};

/// An owned d-dimensional point.
///
/// `Point` is the convenient owned representation used at API boundaries
/// (generators, examples, results). Inner detection loops instead borrow
/// coordinate slices from a [`crate::PointSet`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Point {
    coords: Vec<f64>,
}

impl Point {
    /// Creates a point from its coordinates.
    pub fn new(coords: Vec<f64>) -> Self {
        Point { coords }
    }

    /// Dimensionality of the point.
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Borrow the coordinates.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Consume the point, returning its coordinate vector.
    pub fn into_coords(self) -> Vec<f64> {
        self.coords
    }
}

impl From<Vec<f64>> for Point {
    fn from(coords: Vec<f64>) -> Self {
        Point::new(coords)
    }
}

impl From<[f64; 2]> for Point {
    fn from(c: [f64; 2]) -> Self {
        Point::new(c.to_vec())
    }
}

impl std::ops::Index<usize> for Point {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.coords[i]
    }
}

/// Squared Euclidean distance between two coordinate slices.
///
/// Panics in debug builds if the slices have different lengths; in release
/// builds the shorter length is used (both callers in this workspace always
/// pass equal-dimension slices).
#[inline]
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch in dist_sq");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Euclidean distance between two coordinate slices.
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    dist_sq(a, b).sqrt()
}

/// Returns `true` iff `a` and `b` are neighbors under distance threshold
/// `r` (Definition 2.1: `dist(a, b) <= r`).
///
/// Implemented on squared distances to avoid the `sqrt` in the hottest loop
/// of every detector.
#[inline]
pub fn within(a: &[f64], b: &[f64], r: f64) -> bool {
    dist_sq(a, b) <= r * r
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn point_accessors() {
        let p = Point::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.dim(), 3);
        assert_eq!(p.coords(), &[1.0, 2.0, 3.0]);
        assert_eq!(p[1], 2.0);
        assert_eq!(p.into_coords(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn point_from_array() {
        let p: Point = [3.0, 4.0].into();
        assert_eq!(p.dim(), 2);
    }

    #[test]
    fn euclidean_345() {
        assert_eq!(dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(dist_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn zero_distance_to_self() {
        let p = [1.5, -2.5, 0.0];
        assert_eq!(dist(&p, &p), 0.0);
    }

    #[test]
    fn within_is_inclusive() {
        // Definition 2.1 uses <=, so the boundary counts as a neighbor.
        assert!(within(&[0.0], &[5.0], 5.0));
        assert!(!within(&[0.0], &[5.0 + 1e-9], 5.0));
    }

    #[test]
    fn one_dimensional_distance() {
        assert_eq!(dist(&[-2.0], &[3.0]), 5.0);
    }

    proptest! {
        #[test]
        fn distance_is_symmetric(a in proptest::collection::vec(-1e6f64..1e6, 1..6),
                                 b in proptest::collection::vec(-1e6f64..1e6, 1..6)) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            prop_assert_eq!(dist_sq(a, b), dist_sq(b, a));
        }

        #[test]
        fn distance_nonnegative(a in proptest::collection::vec(-1e6f64..1e6, 1..6),
                                b in proptest::collection::vec(-1e6f64..1e6, 1..6)) {
            let n = a.len().min(b.len());
            prop_assert!(dist_sq(&a[..n], &b[..n]) >= 0.0);
        }

        #[test]
        fn triangle_inequality(a in proptest::collection::vec(-1e3f64..1e3, 2..4),
                               b in proptest::collection::vec(-1e3f64..1e3, 2..4),
                               c in proptest::collection::vec(-1e3f64..1e3, 2..4)) {
            let n = a.len().min(b.len()).min(c.len());
            let (a, b, c) = (&a[..n], &b[..n], &c[..n]);
            prop_assert!(dist(a, c) <= dist(a, b) + dist(b, c) + 1e-9);
        }
    }
}

//! Equi-width grid partitioning of a domain (Definition 3.1, Step 1 of the
//! DOD framework).
//!
//! A [`GridSpec`] divides a domain [`Rect`] into `n_1 × n_2 × ... × n_d`
//! equal-width cells. Every domain point belongs to exactly one cell
//! (points on the upper domain boundary are clamped into the last cell), so
//! the cells form a partition plan in the sense of Section III-C.

use crate::error::CoreError;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// Identifier of a grid cell: the row-major linearization of its
/// per-dimension indices.
pub type CellId = usize;

/// An equi-width grid over a rectangular domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    domain: Rect,
    /// Number of cells along each dimension.
    cells_per_dim: Vec<usize>,
    /// Cell side length along each dimension.
    widths: Vec<f64>,
}

impl GridSpec {
    /// Creates a grid with `cells_per_dim[i]` cells along dimension `i`.
    ///
    /// # Errors
    /// Returns an error if the counts don't match the domain dimensionality
    /// or any count is zero. A zero-extent dimension is allowed only with a
    /// single cell in that dimension.
    pub fn new(domain: Rect, cells_per_dim: Vec<usize>) -> Result<Self, CoreError> {
        if cells_per_dim.len() != domain.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: domain.dim(),
                actual: cells_per_dim.len(),
            });
        }
        for (i, &n) in cells_per_dim.iter().enumerate() {
            if n == 0 {
                return Err(CoreError::InvalidParameter {
                    name: "cells_per_dim",
                    reason: format!("dimension {i} has zero cells"),
                });
            }
            if domain.extent(i) == 0.0 && n != 1 {
                return Err(CoreError::InvalidParameter {
                    name: "cells_per_dim",
                    reason: format!("dimension {i} has zero extent but {n} cells"),
                });
            }
        }
        let widths = (0..domain.dim())
            .map(|i| domain.extent(i) / cells_per_dim[i] as f64)
            .collect();
        Ok(GridSpec {
            domain,
            cells_per_dim,
            widths,
        })
    }

    /// Creates a uniform grid with the same cell count in every dimension.
    ///
    /// # Errors
    /// See [`GridSpec::new`].
    pub fn uniform(domain: Rect, cells: usize) -> Result<Self, CoreError> {
        let d = domain.dim();
        GridSpec::new(domain, vec![cells; d])
    }

    /// Creates the Cell-Based algorithm's grid: cell side
    /// `metric.cell_side_for(r, d)` (the paper's `r/(2√d)` under `L2`) so
    /// that any two points in adjacent cells are within distance `r` of
    /// each other.
    ///
    /// # Errors
    /// Returns an error if `r` is not positive or the resulting cell count
    /// would overflow practical limits (capped at `max_cells_per_dim` per
    /// dimension; pass e.g. 4096).
    pub fn for_cell_based(
        domain: &Rect,
        r: f64,
        metric: crate::metric::Metric,
        max_cells_per_dim: usize,
    ) -> Result<Self, CoreError> {
        if !(r.is_finite() && r > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "r",
                reason: format!("must be a finite positive number, got {r}"),
            });
        }
        let d = domain.dim();
        let side = metric.cell_side_for(r, d);
        let counts = (0..d)
            .map(|i| {
                let extent = domain.extent(i);
                if extent == 0.0 {
                    1
                } else {
                    ((extent / side).ceil() as usize).clamp(1, max_cells_per_dim)
                }
            })
            .collect();
        GridSpec::new(domain.clone(), counts)
    }

    /// The domain covered by the grid.
    pub fn domain(&self) -> &Rect {
        &self.domain
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.domain.dim()
    }

    /// Number of cells along dimension `i`.
    pub fn cells_in_dim(&self, i: usize) -> usize {
        self.cells_per_dim[i]
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells_per_dim.iter().product()
    }

    /// Cell side length along dimension `i`.
    pub fn width(&self, i: usize) -> f64 {
        self.widths[i]
    }

    /// Per-dimension index of the cell containing `x`, clamped into the
    /// grid so that upper-boundary points land in the last cell.
    pub fn coords_of(&self, x: &[f64]) -> Vec<usize> {
        debug_assert_eq!(x.len(), self.dim());
        (0..self.dim())
            .map(|i| {
                if self.widths[i] == 0.0 {
                    0
                } else {
                    let raw = ((x[i] - self.domain.min()[i]) / self.widths[i]).floor();
                    (raw.max(0.0) as usize).min(self.cells_per_dim[i] - 1)
                }
            })
            .collect()
    }

    /// Linear id of the cell containing `x` (row-major).
    pub fn cell_of(&self, x: &[f64]) -> CellId {
        self.linearize(&self.coords_of(x))
    }

    /// Row-major linearization of per-dimension cell indices.
    pub fn linearize(&self, idx: &[usize]) -> CellId {
        debug_assert_eq!(idx.len(), self.dim());
        let mut id = 0usize;
        for (i, &c) in idx.iter().enumerate() {
            debug_assert!(c < self.cells_per_dim[i]);
            id = id * self.cells_per_dim[i] + c;
        }
        id
    }

    /// Inverse of [`GridSpec::linearize`].
    pub fn delinearize(&self, mut id: CellId) -> Vec<usize> {
        let d = self.dim();
        let mut idx = vec![0usize; d];
        for i in (0..d).rev() {
            idx[i] = id % self.cells_per_dim[i];
            id /= self.cells_per_dim[i];
        }
        idx
    }

    /// The rectangle covered by cell `id`.
    pub fn cell_rect(&self, id: CellId) -> Rect {
        let idx = self.delinearize(id);
        let min: Vec<f64> = (0..self.dim())
            .map(|i| self.domain.min()[i] + idx[i] as f64 * self.widths[i])
            .collect();
        let max: Vec<f64> = (0..self.dim())
            .map(|i| {
                if idx[i] + 1 == self.cells_per_dim[i] {
                    // Use the exact domain bound to avoid FP drift on the
                    // last cell.
                    self.domain.max()[i]
                } else {
                    self.domain.min()[i] + (idx[i] + 1) as f64 * self.widths[i]
                }
            })
            .collect();
        Rect::new(min, max).expect("cell bounds are valid by construction")
    }

    /// Ids of all cells whose rectangle intersects `query` (closed test).
    pub fn cells_intersecting(&self, query: &Rect) -> Vec<CellId> {
        debug_assert_eq!(query.dim(), self.dim());
        let d = self.dim();
        // Per-dimension index range of candidate cells.
        let mut lo = vec![0usize; d];
        let mut hi = vec![0usize; d];
        for i in 0..d {
            if query.max()[i] < self.domain.min()[i] || query.min()[i] > self.domain.max()[i] {
                return Vec::new(); // disjoint from the domain
            }
            let w = self.widths[i];
            let n = self.cells_per_dim[i];
            if w == 0.0 {
                lo[i] = 0;
                hi[i] = 0;
                continue;
            }
            let lo_raw = ((query.min()[i] - self.domain.min()[i]) / w).floor();
            let hi_raw = ((query.max()[i] - self.domain.min()[i]) / w).floor();
            lo[i] = (lo_raw.max(0.0) as usize).min(n - 1);
            hi[i] = (hi_raw.max(0.0) as usize).min(n - 1);
        }
        let mut out = Vec::new();
        let mut cursor = lo.clone();
        loop {
            out.push(self.linearize(&cursor));
            // advance odometer
            let mut i = d;
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                if cursor[i] < hi[i] {
                    cursor[i] += 1;
                    for (j, c) in cursor.iter_mut().enumerate().skip(i + 1) {
                        *c = lo[j];
                    }
                    break;
                }
            }
        }
    }

    /// Ids of the cells within `radius_cells` grid steps of cell `id`
    /// (Chebyshev neighborhood), excluding `id` itself when
    /// `include_self == false`. Used by the Cell-Based detector's L1/L2
    /// neighborhoods.
    pub fn neighborhood(&self, id: CellId, radius_cells: usize, include_self: bool) -> Vec<CellId> {
        let idx = self.delinearize(id);
        let d = self.dim();
        let mut lo = vec![0usize; d];
        let mut hi = vec![0usize; d];
        for i in 0..d {
            lo[i] = idx[i].saturating_sub(radius_cells);
            hi[i] = (idx[i] + radius_cells).min(self.cells_per_dim[i] - 1);
        }
        let mut out = Vec::new();
        let mut cursor = lo.clone();
        loop {
            let cid = self.linearize(&cursor);
            if include_self || cid != id {
                out.push(cid);
            }
            let mut i = d;
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                if cursor[i] < hi[i] {
                    cursor[i] += 1;
                    for (j, c) in cursor.iter_mut().enumerate().skip(i + 1) {
                        *c = lo[j];
                    }
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unit_grid(nx: usize, ny: usize) -> GridSpec {
        let domain = Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        GridSpec::new(domain, vec![nx, ny]).unwrap()
    }

    #[test]
    fn rejects_zero_cells() {
        let domain = Rect::new(vec![0.0], vec![1.0]).unwrap();
        assert!(GridSpec::new(domain, vec![0]).is_err());
    }

    #[test]
    fn rejects_mismatched_counts() {
        let domain = Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        assert!(GridSpec::new(domain, vec![2]).is_err());
    }

    #[test]
    fn zero_extent_needs_one_cell() {
        let domain = Rect::new(vec![0.0, 0.0], vec![1.0, 0.0]).unwrap();
        assert!(GridSpec::new(domain.clone(), vec![2, 2]).is_err());
        assert!(GridSpec::new(domain, vec![2, 1]).is_ok());
    }

    #[test]
    fn num_cells_product() {
        assert_eq!(unit_grid(4, 3).num_cells(), 12);
    }

    #[test]
    fn linearize_round_trip() {
        let g = unit_grid(4, 3);
        for id in 0..g.num_cells() {
            assert_eq!(g.linearize(&g.delinearize(id)), id);
        }
    }

    #[test]
    fn cell_of_interior_point() {
        let g = unit_grid(2, 2);
        assert_eq!(g.coords_of(&[0.25, 0.25]), vec![0, 0]);
        assert_eq!(g.coords_of(&[0.75, 0.25]), vec![1, 0]);
        assert_eq!(g.coords_of(&[0.25, 0.75]), vec![0, 1]);
        assert_eq!(g.coords_of(&[0.75, 0.75]), vec![1, 1]);
    }

    #[test]
    fn upper_boundary_clamps_to_last_cell() {
        let g = unit_grid(2, 2);
        assert_eq!(g.coords_of(&[1.0, 1.0]), vec![1, 1]);
    }

    #[test]
    fn cell_rect_tiles_domain() {
        let g = unit_grid(4, 2);
        let total: f64 = (0..g.num_cells()).map(|id| g.cell_rect(id).volume()).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Last cell's max hits the domain max exactly.
        let last = g.cell_rect(g.num_cells() - 1);
        assert_eq!(last.max(), g.domain().max());
    }

    #[test]
    fn cells_intersecting_small_query() {
        let g = unit_grid(4, 4);
        let q = Rect::new(vec![0.1, 0.1], vec![0.2, 0.2]).unwrap();
        assert_eq!(g.cells_intersecting(&q), vec![g.cell_of(&[0.15, 0.15])]);
    }

    #[test]
    fn cells_intersecting_spanning_query() {
        let g = unit_grid(4, 4);
        let q = Rect::new(vec![0.1, 0.1], vec![0.6, 0.1]).unwrap();
        // x spans cells 0..=2, y stays in row 0.
        let ids = g.cells_intersecting(&q);
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn cells_intersecting_disjoint_query() {
        let g = unit_grid(4, 4);
        let q = Rect::new(vec![2.0, 2.0], vec![3.0, 3.0]).unwrap();
        assert!(g.cells_intersecting(&q).is_empty());
    }

    #[test]
    fn cells_intersecting_whole_domain() {
        let g = unit_grid(3, 3);
        let ids = g.cells_intersecting(g.domain());
        assert_eq!(ids.len(), 9);
    }

    #[test]
    fn neighborhood_center_cell() {
        let g = unit_grid(5, 5);
        let center = g.linearize(&[2, 2]);
        let n1 = g.neighborhood(center, 1, false);
        assert_eq!(n1.len(), 8);
        let n1_with_self = g.neighborhood(center, 1, true);
        assert_eq!(n1_with_self.len(), 9);
        let n2 = g.neighborhood(center, 2, true);
        assert_eq!(n2.len(), 25);
    }

    #[test]
    fn neighborhood_corner_cell_truncated() {
        let g = unit_grid(5, 5);
        let corner = g.linearize(&[0, 0]);
        assert_eq!(g.neighborhood(corner, 1, true).len(), 4);
        assert_eq!(g.neighborhood(corner, 2, true).len(), 9);
    }

    #[test]
    fn for_cell_based_side_length() {
        let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]).unwrap();
        let g = GridSpec::for_cell_based(&domain, 10.0, crate::metric::Metric::Euclidean, 4096)
            .unwrap();
        // side = r / (2 sqrt(2)) ≈ 3.5355 -> ceil(100 / 3.5355) = 29 cells
        assert_eq!(g.cells_in_dim(0), 29);
        // Any two points in one cell are within r.
        let diag: f64 = (0..2).map(|i| g.width(i).powi(2)).sum::<f64>().sqrt();
        assert!(diag <= 10.0 / 2.0 + 1e-9);
    }

    #[test]
    fn for_cell_based_rejects_bad_r() {
        let domain = Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        assert!(
            GridSpec::for_cell_based(&domain, 0.0, crate::metric::Metric::Euclidean, 4096).is_err()
        );
        assert!(
            GridSpec::for_cell_based(&domain, -1.0, crate::metric::Metric::Euclidean, 4096)
                .is_err()
        );
    }

    #[test]
    fn for_cell_based_respects_cap() {
        let domain = Rect::new(vec![0.0, 0.0], vec![1e9, 1e9]).unwrap();
        let g =
            GridSpec::for_cell_based(&domain, 1.0, crate::metric::Metric::Euclidean, 64).unwrap();
        assert_eq!(g.cells_in_dim(0), 64);
    }

    #[test]
    fn three_dimensional_grid() {
        let domain = Rect::new(vec![0.0; 3], vec![1.0; 3]).unwrap();
        let g = GridSpec::new(domain, vec![2, 3, 4]).unwrap();
        assert_eq!(g.num_cells(), 24);
        for id in 0..24 {
            assert_eq!(g.linearize(&g.delinearize(id)), id);
            let rect = g.cell_rect(id);
            let c = rect.center();
            assert_eq!(g.cell_of(&c), id);
        }
    }

    proptest! {
        #[test]
        fn every_domain_point_has_exactly_one_cell(
            x in 0.0f64..=1.0, y in 0.0f64..=1.0,
            nx in 1usize..8, ny in 1usize..8,
        ) {
            let g = unit_grid(nx, ny);
            let id = g.cell_of(&[x, y]);
            prop_assert!(id < g.num_cells());
            // The owning cell's rect contains the point under closed
            // semantics (half-open interior, closed at domain max).
            let rect = g.cell_rect(id);
            prop_assert!(rect.contains_closed(&[x, y]));
        }

        #[test]
        fn cells_intersecting_is_sound_and_complete(
            qx0 in -0.5f64..1.0, qy0 in -0.5f64..1.0,
            w in 0.0f64..0.8, h in 0.0f64..0.8,
            nx in 1usize..6, ny in 1usize..6,
        ) {
            let g = unit_grid(nx, ny);
            let q = Rect::new(vec![qx0, qy0], vec![qx0 + w, qy0 + h]).unwrap();
            let got: std::collections::BTreeSet<_> =
                g.cells_intersecting(&q).into_iter().collect();
            for id in 0..g.num_cells() {
                let expected = g.cell_rect(id).intersects(&q);
                prop_assert_eq!(got.contains(&id), expected,
                    "cell {} mismatch", id);
            }
        }
    }
}

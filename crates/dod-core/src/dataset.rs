//! Columnar point storage.
//!
//! Datasets in the millions of points must not pay one heap allocation per
//! point, so [`PointSet`] stores all coordinates in a single flat buffer and
//! hands out `&[f64]` slices. Points are identified by their stable index
//! ([`PointId`]), which is how the distributed pipeline refers to outliers
//! across map/reduce boundaries.

use crate::error::CoreError;
use crate::point::Point;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// Stable identifier of a point within its dataset: the insertion index.
pub type PointId = u64;

/// A set of d-dimensional points stored in one contiguous buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointSet {
    dim: usize,
    coords: Vec<f64>,
}

impl PointSet {
    /// Creates an empty point set of the given dimensionality.
    ///
    /// # Errors
    /// Returns an error if `dim == 0`.
    pub fn new(dim: usize) -> Result<Self, CoreError> {
        if dim == 0 {
            return Err(CoreError::InvalidParameter {
                name: "dim",
                reason: "dimensionality must be at least 1".into(),
            });
        }
        Ok(PointSet {
            dim,
            coords: Vec::new(),
        })
    }

    /// Creates an empty point set with capacity for `n` points.
    ///
    /// # Errors
    /// Returns an error if `dim == 0`.
    pub fn with_capacity(dim: usize, n: usize) -> Result<Self, CoreError> {
        let mut s = PointSet::new(dim)?;
        s.coords.reserve(n * dim);
        Ok(s)
    }

    /// Builds a point set from a flat coordinate buffer.
    ///
    /// # Errors
    /// Returns an error if `dim == 0` or the buffer length is not a
    /// multiple of `dim`.
    pub fn from_flat(dim: usize, coords: Vec<f64>) -> Result<Self, CoreError> {
        if dim == 0 {
            return Err(CoreError::InvalidParameter {
                name: "dim",
                reason: "dimensionality must be at least 1".into(),
            });
        }
        if !coords.len().is_multiple_of(dim) {
            return Err(CoreError::InvalidParameter {
                name: "coords",
                reason: format!("length {} is not a multiple of dim {dim}", coords.len()),
            });
        }
        Ok(PointSet { dim, coords })
    }

    /// Builds a 2-d point set from `(x, y)` pairs — the common case in the
    /// paper's spatial evaluation.
    pub fn from_xy(pairs: &[(f64, f64)]) -> Self {
        let mut coords = Vec::with_capacity(pairs.len() * 2);
        for &(x, y) in pairs {
            coords.push(x);
            coords.push(y);
        }
        PointSet { dim: 2, coords }
    }

    /// Dimensionality of every point in the set.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    /// Whether the set holds no points.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Coordinates of point `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// Appends a point given as a coordinate slice.
    ///
    /// # Errors
    /// Returns an error on dimensionality mismatch.
    pub fn push(&mut self, coords: &[f64]) -> Result<PointId, CoreError> {
        if coords.len() != self.dim {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim,
                actual: coords.len(),
            });
        }
        let id = self.len() as PointId;
        self.coords.extend_from_slice(coords);
        Ok(id)
    }

    /// Appends an owned [`Point`].
    ///
    /// # Errors
    /// Returns an error on dimensionality mismatch.
    pub fn push_point(&mut self, p: &Point) -> Result<PointId, CoreError> {
        self.push(p.coords())
    }

    /// Iterator over all coordinate slices, in id order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f64]> + '_ {
        self.coords.chunks_exact(self.dim)
    }

    /// The flat coordinate buffer.
    pub fn as_flat(&self) -> &[f64] {
        &self.coords
    }

    /// Bounding box of the set.
    ///
    /// # Errors
    /// Returns an error if the set is empty.
    pub fn bounding_rect(&self) -> Result<Rect, CoreError> {
        Rect::bounding(self.iter(), self.dim)
    }

    /// A new set containing the points whose ids are listed, in order.
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn gather(&self, ids: &[PointId]) -> PointSet {
        let mut out = PointSet {
            dim: self.dim,
            coords: Vec::with_capacity(ids.len() * self.dim),
        };
        for &id in ids {
            out.coords.extend_from_slice(self.point(id as usize));
        }
        out
    }

    /// Removes point `i` in O(d) by moving the last point into its slot.
    ///
    /// The point previously at index `len() - 1` takes index `i`; all
    /// other indices are unchanged. Callers tracking ids per index must
    /// renumber that one moved point.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn swap_remove(&mut self, i: usize) {
        let last = self.len() - 1;
        assert!(i <= last, "swap_remove index {i} out of range {}", last + 1);
        if i < last {
            let (head, tail) = self.coords.split_at_mut(last * self.dim);
            head[i * self.dim..(i + 1) * self.dim].copy_from_slice(&tail[..self.dim]);
        }
        self.coords.truncate(last * self.dim);
    }

    /// Appends every point of `other`.
    ///
    /// # Errors
    /// Returns an error on dimensionality mismatch.
    pub fn extend_from(&mut self, other: &PointSet) -> Result<(), CoreError> {
        if other.dim != self.dim {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim,
                actual: other.dim,
            });
        }
        self.coords.extend_from_slice(&other.coords);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_dim_rejected() {
        assert!(PointSet::new(0).is_err());
        assert!(PointSet::from_flat(0, vec![]).is_err());
    }

    #[test]
    fn push_and_read_back() {
        let mut s = PointSet::new(3).unwrap();
        let a = s.push(&[1.0, 2.0, 3.0]).unwrap();
        let b = s.push(&[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.point(0), &[1.0, 2.0, 3.0]);
        assert_eq!(s.point(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn push_wrong_dim_errors() {
        let mut s = PointSet::new(2).unwrap();
        assert!(s.push(&[1.0]).is_err());
        assert!(s.push(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn from_flat_validates_multiple() {
        assert!(PointSet::from_flat(2, vec![1.0, 2.0, 3.0]).is_err());
        let s = PointSet::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn from_xy_layout() {
        let s = PointSet::from_xy(&[(1.0, 2.0), (3.0, 4.0)]);
        assert_eq!(s.dim(), 2);
        assert_eq!(s.point(1), &[3.0, 4.0]);
    }

    #[test]
    fn iter_matches_point() {
        let s = PointSet::from_xy(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        let collected: Vec<&[f64]> = s.iter().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[2], s.point(2));
    }

    #[test]
    fn gather_selects_in_order() {
        let s = PointSet::from_xy(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        let g = s.gather(&[2, 0]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.point(0), &[2.0, 2.0]);
        assert_eq!(g.point(1), &[0.0, 0.0]);
    }

    #[test]
    fn swap_remove_moves_last_into_slot() {
        let mut s = PointSet::from_xy(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        s.swap_remove(0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.point(0), &[2.0, 2.0]);
        assert_eq!(s.point(1), &[1.0, 1.0]);
        s.swap_remove(1); // removing the last point moves nothing
        assert_eq!(s.len(), 1);
        assert_eq!(s.point(0), &[2.0, 2.0]);
        s.swap_remove(0);
        assert!(s.is_empty());
    }

    #[test]
    fn extend_from_appends() {
        let mut a = PointSet::from_xy(&[(0.0, 0.0)]);
        let b = PointSet::from_xy(&[(1.0, 1.0)]);
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 2);
        let c = PointSet::new(3).unwrap();
        assert!(a.extend_from(&c).is_err());
    }

    #[test]
    fn bounding_rect_empty_errors() {
        let s = PointSet::new(2).unwrap();
        assert!(s.bounding_rect().is_err());
    }

    #[test]
    fn bounding_rect_covers_points() {
        let s = PointSet::from_xy(&[(0.0, 5.0), (-3.0, 2.0), (4.0, -1.0)]);
        let r = s.bounding_rect().unwrap();
        assert_eq!(r.min(), &[-3.0, -1.0]);
        assert_eq!(r.max(), &[4.0, 5.0]);
    }

    proptest! {
        #[test]
        fn push_then_point_round_trips(
            pts in proptest::collection::vec(
                proptest::collection::vec(-1e9f64..1e9, 3), 1..50)
        ) {
            let mut s = PointSet::new(3).unwrap();
            for p in &pts {
                s.push(p).unwrap();
            }
            prop_assert_eq!(s.len(), pts.len());
            for (i, p) in pts.iter().enumerate() {
                prop_assert_eq!(s.point(i), p.as_slice());
            }
        }

        #[test]
        fn bounding_rect_contains_all(
            pts in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..40)
        ) {
            let s = PointSet::from_xy(&pts);
            let r = s.bounding_rect().unwrap();
            for p in s.iter() {
                prop_assert!(r.contains_closed(p));
            }
        }
    }
}

//! Distance metrics.
//!
//! Definition 2.1 assumes an arbitrary distance function `dist(pi, pj)`;
//! the paper's evaluation (and this crate's default) is Euclidean. The
//! geometric machinery every detector relies on — point-to-rectangle
//! distances for supporting areas, grid cell sizing for the Cell-Based
//! pruning rules, ball volumes for the cost models — is metric-dependent,
//! so each metric carries those operations with it.

use serde::{Deserialize, Serialize};

/// The supported distance metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Metric {
    /// `L2` — the paper's metric.
    #[default]
    Euclidean,
    /// `L1` (taxicab).
    Manhattan,
    /// `L∞` (maximum per-dimension difference).
    Chebyshev,
}

impl Metric {
    /// Distance between two coordinate slices.
    #[inline]
    pub fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Metric::Euclidean => crate::point::dist(a, b),
            Metric::Manhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            Metric::Chebyshev => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
        }
    }

    /// Whether `dist(a, b) <= r` — the Definition 2.1 neighbor predicate
    /// (avoids the square root for the Euclidean case).
    #[inline]
    pub fn within(&self, a: &[f64], b: &[f64], r: f64) -> bool {
        match self {
            Metric::Euclidean => crate::point::dist_sq(a, b) <= r * r,
            _ => self.dist(a, b) <= r,
        }
    }

    /// Distance from `x` to the closest point of the axis-aligned box
    /// `[min, max]`. For all three metrics a point lying inside the box
    /// (or on its boundary) has distance exactly `0`: every per-dimension
    /// gap is zero, and sums, sums of squares, and maxima of zeros are
    /// all zero. The exact predicate behind supporting-area routing under
    /// this metric.
    ///
    /// A `NaN` coordinate (in `x` or in the bounds) yields `NaN` rather
    /// than being silently treated as inside-box: both range comparisons
    /// are false for `NaN`, which previously produced a `0.0` gap — and
    /// `f64::max` would then swallow the poison for `L∞`. Callers gate
    /// with `> r`, which is false for `NaN`, so a poisoned distance
    /// degrades to "don't prune" — never to a wrong prune.
    pub fn min_dist_to_rect(&self, min: &[f64], max: &[f64], x: &[f64]) -> f64 {
        debug_assert_eq!(min.len(), x.len());
        debug_assert_eq!(min.len(), max.len());
        let gaps = (0..x.len()).map(|i| {
            if x[i] < min[i] {
                min[i] - x[i]
            } else if x[i] > max[i] {
                x[i] - max[i]
            } else if x[i].is_nan() || min[i].is_nan() || max[i].is_nan() {
                f64::NAN
            } else {
                0.0
            }
        });
        match self {
            Metric::Euclidean => gaps.map(|g| g * g).sum::<f64>().sqrt(),
            Metric::Manhattan => gaps.sum(),
            Metric::Chebyshev => gaps.fold(0.0, |a, b| {
                if a.is_nan() || b.is_nan() {
                    f64::NAN
                } else {
                    a.max(b)
                }
            }),
        }
    }

    /// Grid cell side such that any two points within a 2-cell-wide
    /// per-dimension block are within `r` — the Cell-Based inlier-rule
    /// guarantee (the paper's `r/(2√d)` for `L2`).
    ///
    /// Per-dimension separation inside the block is at most `2s`, so the
    /// block diameter is `2s·d^(1/p)` for `Lp` and `2s` for `L∞`.
    pub fn cell_side_for(&self, r: f64, dim: usize) -> f64 {
        let d = dim as f64;
        match self {
            Metric::Euclidean => r / (2.0 * d.sqrt()),
            Metric::Manhattan => r / (2.0 * d),
            Metric::Chebyshev => r / 2.0,
        }
    }

    /// Volume of the `r`-ball in `dim` dimensions — the `A(p)` of
    /// Lemma 4.1.
    pub fn ball_volume(&self, dim: usize, r: f64) -> f64 {
        let d = dim as i32;
        match self {
            Metric::Euclidean => {
                // π^{d/2} r^d / Γ(d/2 + 1), computed via the cross-ball
                // recurrences below for exactness at integer dimensions.
                euclidean_ball_volume(dim, r)
            }
            // L1 ball (cross-polytope): 2^d r^d / d!.
            Metric::Manhattan => {
                let mut v = 1.0;
                for i in 1..=dim {
                    v *= 2.0 * r / i as f64;
                }
                v
            }
            Metric::Chebyshev => (2.0 * r).powi(d),
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Euclidean => "euclidean",
            Metric::Manhattan => "manhattan",
            Metric::Chebyshev => "chebyshev",
        }
    }
}

fn euclidean_ball_volume(dim: usize, r: f64) -> f64 {
    // V_d = V_{d-2} · 2πr²/d, with V_0 = 1, V_1 = 2r.
    match dim {
        0 => 1.0,
        1 => 2.0 * r,
        _ => euclidean_ball_volume(dim - 2, r) * 2.0 * std::f64::consts::PI * r * r / dim as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const METRICS: [Metric; 3] = [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev];

    #[test]
    fn distances_on_a_345_triangle() {
        let (a, b) = ([0.0, 0.0], [3.0, 4.0]);
        assert_eq!(Metric::Euclidean.dist(&a, &b), 5.0);
        assert_eq!(Metric::Manhattan.dist(&a, &b), 7.0);
        assert_eq!(Metric::Chebyshev.dist(&a, &b), 4.0);
    }

    #[test]
    fn within_matches_dist() {
        let (a, b) = ([0.0, 0.0], [3.0, 4.0]);
        for m in METRICS {
            let d = m.dist(&a, &b);
            assert!(m.within(&a, &b, d));
            assert!(!m.within(&a, &b, d - 1e-9));
        }
    }

    #[test]
    fn min_dist_to_rect_cases() {
        let (lo, hi) = ([0.0, 0.0], [1.0, 1.0]);
        // Inside -> 0 for all metrics.
        for m in METRICS {
            assert_eq!(m.min_dist_to_rect(&lo, &hi, &[0.5, 0.5]), 0.0);
        }
        // Corner-diagonal point (2, 2): gaps (1, 1).
        assert!(
            (Metric::Euclidean.min_dist_to_rect(&lo, &hi, &[2.0, 2.0]) - 2f64.sqrt()).abs() < 1e-12
        );
        assert_eq!(
            Metric::Manhattan.min_dist_to_rect(&lo, &hi, &[2.0, 2.0]),
            2.0
        );
        assert_eq!(
            Metric::Chebyshev.min_dist_to_rect(&lo, &hi, &[2.0, 2.0]),
            1.0
        );
    }

    /// Release-mode guarantee for the documented inside-box contract:
    /// interior points, boundary points, and corner points are at
    /// distance exactly `0.0` — not merely small — for all metrics.
    #[test]
    fn inside_box_distance_is_exactly_zero() {
        let (lo, hi) = ([-1.0, 0.0, 2.5], [1.0, 3.0, 2.5]);
        let inside = [
            [0.0, 1.5, 2.5],  // interior (degenerate dim on its plane)
            [-1.0, 0.0, 2.5], // min corner
            [1.0, 3.0, 2.5],  // max corner
            [1.0, 1.5, 2.5],  // face
        ];
        for m in METRICS {
            for x in &inside {
                let d = m.min_dist_to_rect(&lo, &hi, x);
                assert_eq!(d, 0.0, "{m:?} {x:?}");
                assert_eq!(d.to_bits(), 0.0f64.to_bits(), "{m:?} {x:?} (exact zero)");
            }
        }
    }

    /// `NaN` coordinates must poison the distance instead of counting as
    /// inside-box — for the query point and for either bound, in any
    /// position (first, middle, last dimension).
    #[test]
    fn nan_coordinates_are_rejected() {
        let (lo, hi) = ([0.0, 0.0, 0.0], [1.0, 1.0, 1.0]);
        for m in METRICS {
            for i in 0..3 {
                let mut x = [0.5, 0.5, 0.5];
                x[i] = f64::NAN;
                assert!(m.min_dist_to_rect(&lo, &hi, &x).is_nan(), "{m:?} x[{i}]");
                // A NaN bound poisons too, even for an otherwise-inside x.
                let mut blo = lo;
                blo[i] = f64::NAN;
                assert!(
                    m.min_dist_to_rect(&blo, &hi, &[0.5, 0.5, 0.5]).is_nan(),
                    "{m:?} min[{i}]"
                );
                let mut bhi = hi;
                bhi[i] = f64::NAN;
                assert!(
                    m.min_dist_to_rect(&lo, &bhi, &[0.5, 0.5, 0.5]).is_nan(),
                    "{m:?} max[{i}]"
                );
            }
            // NaN never gates pruning on: callers test `> r`, which is
            // false for a NaN distance.
            let d = m.min_dist_to_rect(&lo, &hi, &[f64::NAN, 0.5, 0.5]);
            assert_eq!(d.partial_cmp(&1.0), None);
        }
    }

    #[test]
    fn cell_side_guarantee() {
        // Two points in a 2-cell-wide block are within r.
        for m in METRICS {
            for dim in 1..=4usize {
                let r = 3.0;
                let s = m.cell_side_for(r, dim);
                // Worst case: separation 2s in every dimension.
                let a = vec![0.0; dim];
                let b = vec![2.0 * s; dim];
                assert!(
                    m.dist(&a, &b) <= r + 1e-9,
                    "{:?} dim {dim}: {} > {r}",
                    m,
                    m.dist(&a, &b)
                );
            }
        }
    }

    #[test]
    fn ball_volumes() {
        // 2-d: π r², 2r² (diamond), 4r² (square).
        let r = 2.0;
        assert!((Metric::Euclidean.ball_volume(2, r) - std::f64::consts::PI * 4.0).abs() < 1e-9);
        assert_eq!(Metric::Manhattan.ball_volume(2, r), 8.0);
        assert_eq!(Metric::Chebyshev.ball_volume(2, r), 16.0);
        // 3-d Euclidean: 4/3 π r³.
        assert!(
            (Metric::Euclidean.ball_volume(3, 1.0) - 4.0 / 3.0 * std::f64::consts::PI).abs() < 1e-9
        );
        // 1-d: all metrics give 2r.
        for m in METRICS {
            assert_eq!(m.ball_volume(1, r), 4.0);
        }
    }

    #[test]
    fn ball_volume_ordering() {
        // L1 ball ⊆ L2 ball ⊆ L∞ ball.
        for dim in 1..=5 {
            let l1 = Metric::Manhattan.ball_volume(dim, 1.0);
            let l2 = Metric::Euclidean.ball_volume(dim, 1.0);
            let li = Metric::Chebyshev.ball_volume(dim, 1.0);
            assert!(l1 <= l2 + 1e-12 && l2 <= li + 1e-12, "dim {dim}");
        }
    }

    #[test]
    fn default_is_euclidean() {
        assert_eq!(Metric::default(), Metric::Euclidean);
        assert_eq!(Metric::default().name(), "euclidean");
    }

    proptest! {
        #[test]
        fn metric_ordering_pointwise(
            a in proptest::collection::vec(-100.0f64..100.0, 2..5),
            b in proptest::collection::vec(-100.0f64..100.0, 2..5),
        ) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            // L∞ <= L2 <= L1 for any pair.
            let l1 = Metric::Manhattan.dist(a, b);
            let l2 = Metric::Euclidean.dist(a, b);
            let li = Metric::Chebyshev.dist(a, b);
            prop_assert!(li <= l2 + 1e-9);
            prop_assert!(l2 <= l1 + 1e-9);
        }

        #[test]
        fn min_dist_lower_bounds_point_dists(
            x in proptest::collection::vec(-5.0f64..5.0, 2),
            y in proptest::collection::vec(0.0f64..1.0, 2),
        ) {
            // min_dist(rect, x) <= dist(x, y) for any y in the rect.
            let (lo, hi) = ([0.0, 0.0], [1.0, 1.0]);
            for m in METRICS {
                prop_assert!(
                    m.min_dist_to_rect(&lo, &hi, &x) <= m.dist(&x, &y) + 1e-9
                );
            }
        }

        #[test]
        fn triangle_inequality_all_metrics(
            a in proptest::collection::vec(-50.0f64..50.0, 3),
            b in proptest::collection::vec(-50.0f64..50.0, 3),
            c in proptest::collection::vec(-50.0f64..50.0, 3),
        ) {
            for m in METRICS {
                prop_assert!(m.dist(&a, &c) <= m.dist(&a, &b) + m.dist(&b, &c) + 1e-9);
            }
        }
    }
}

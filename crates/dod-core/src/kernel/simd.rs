//! Explicit `std::arch` kernel backends (the `simd` cargo feature).
//!
//! Two data-parallel layouts, both bit-identical to the scalar tiles:
//!
//! * **point-parallel** (single query): 4 points per AVX2 vector
//!   (2 per NEON vector), transposed from the row-major tile so each
//!   lane accumulates one point's distance. Used by
//!   [`NeighborPredicate::count_within_tile`].
//! * **query-parallel** (multi query): 4 queries per AVX2 vector in
//!   SoA layout, iterating points and broadcasting each point
//!   coordinate — so one pass over the tile serves the whole query
//!   group and the tile's memory traffic is amortized. Used by
//!   [`NeighborPredicate::count_within_tile_multi`].
//!
//! Bit-identity is guaranteed by construction: every lane accumulates
//! dimensions in **ascending order with a single accumulator** using
//! plain IEEE sub/mul/add — exactly the operation sequence of
//! [`crate::point::dist_sq`] and the scalar `Metric` loops. No FMA is
//! used anywhere: `fmadd` fuses the rounding step and could flip a
//! comparison exactly at the `r` boundary. Because the math is
//! bit-identical, the scalar replay of the block that crosses `need`
//! (same rule as the scalar kernels) reproduces the exact early-exit
//! position.
//!
//! Dispatch: [`detect`] runtime-checks AVX2 on x86-64
//! (`is_x86_feature_detected!`, cached by `std`) and assumes NEON on
//! aarch64 (baseline there); every entry point returns `None` when no
//! vector backend applies so the caller falls back to the scalar tiles.

use super::{NeighborPredicate, TileOutcome, BLOCK_POINTS};
use crate::metric::Metric;

/// Runtime backend selection for this process.
pub(super) fn detect() -> super::KernelBackend {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return super::KernelBackend::Avx2;
    }
    #[cfg(target_arch = "aarch64")]
    return super::KernelBackend::Neon;
    #[cfg(not(target_arch = "aarch64"))]
    super::KernelBackend::Scalar
}

/// Vectorized single-query tile scan, or `None` when the scalar tiles
/// are the better implementation (caller falls back to them).
///
/// Dispatch is *measured*, not reflexive: the monomorphized `d <= 4`
/// scalar kernels already autovectorize into tighter code than the
/// explicit transpose path (see the per-backend `micro_*` rows in
/// `BENCH_kernels.json`), so explicit lanes only take over in the
/// generic-kernel region `d > 4`, where the scalar fallback's
/// early-abandon checks defeat autovectorization. Query-parallel
/// multi scans have no such crossover — they win at every `d`.
#[allow(unused_variables)]
#[inline]
pub(super) fn count_within_tile(
    pred: &NeighborPredicate,
    query: &[f64],
    tile: &[f64],
    dim: usize,
    need: usize,
) -> Option<TileOutcome> {
    if dim <= 4 {
        return None;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support verified at runtime on this CPU.
        return Some(unsafe { x86::count_single(pred, query, tile, dim, need) });
    }
    #[cfg(target_arch = "aarch64")]
    {
        // SAFETY: NEON is a baseline feature of the aarch64 target.
        return Some(unsafe { neon::count_single(pred, query, tile, dim, need) });
    }
    #[cfg(not(target_arch = "aarch64"))]
    None
}

/// Vectorized query-parallel multi scan, or `None` to fall back to the
/// per-query path (which itself may use the single-query vector kernel).
#[allow(unused_variables)]
#[inline]
pub(super) fn count_within_tile_multi(
    pred: &NeighborPredicate,
    queries: &[f64],
    tile: &[f64],
    needs: &[usize],
    dim: usize,
) -> Option<Vec<TileOutcome>> {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support verified at runtime on this CPU.
        return Some(unsafe { x86::count_multi(pred, queries, tile, needs, dim) });
    }
    None
}

/// The comparison threshold a metric's accumulated lane value is tested
/// against: `r²` for Euclidean (lanes accumulate squared distance),
/// `r` otherwise.
#[inline]
fn lane_threshold(pred: &NeighborPredicate) -> f64 {
    match pred.metric() {
        Metric::Euclidean => pred.r_sq(),
        _ => pred.r(),
    }
}

/// Scalar replay of the block that crosses `need`, shared by every
/// backend. `found` is the running count entering the block; returns the
/// final count and the number of points of this block examined. The
/// replay predicate is [`NeighborPredicate::within`], which is
/// bit-identical to the lane math, so the blockwise count's promise that
/// `need` is reached inside this block always holds.
#[inline]
fn replay_block(
    pred: &NeighborPredicate,
    q: &[f64],
    block: &[f64],
    dim: usize,
    need: usize,
    mut found: usize,
) -> (usize, usize) {
    for (i, p) in block.chunks_exact(dim).enumerate() {
        if pred.within(q, p) {
            found += 1;
            if found >= need {
                return (found, i + 1);
            }
        }
    }
    unreachable!("blockwise count promised `need` is reached in this block");
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use std::arch::x86_64::*;

    /// Point-parallel single-query scan: the scalar kernels' blockwise
    /// skeleton with the per-block count computed 4 points at a time.
    ///
    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn count_single(
        pred: &NeighborPredicate,
        q: &[f64],
        tile: &[f64],
        dim: usize,
        need: usize,
    ) -> TileOutcome {
        let thresh = lane_threshold(pred);
        let metric = pred.metric();
        let mut found = 0usize;
        let mut scanned = 0usize;
        for block in tile.chunks(dim * BLOCK_POINTS) {
            // Monomorphize the hot dimensionalities: a const trip count
            // lets LLVM fully unroll the per-dimension loops (a runtime
            // `dim` bound blocks unrolling). `0` means "runtime dim".
            let hits = match dim {
                5 => block_hits_single::<5>(metric, pred, q, block, dim, thresh),
                6 => block_hits_single::<6>(metric, pred, q, block, dim, thresh),
                7 => block_hits_single::<7>(metric, pred, q, block, dim, thresh),
                8 => block_hits_single::<8>(metric, pred, q, block, dim, thresh),
                _ => block_hits_single::<0>(metric, pred, q, block, dim, thresh),
            };
            if found + hits >= need {
                let (f, examined) = replay_block(pred, q, block, dim, need, found);
                return TileOutcome {
                    found: f,
                    scanned: scanned + examined,
                };
            }
            found += hits;
            scanned += block.len() / dim;
        }
        TileOutcome { found, scanned }
    }

    /// Branchless hit count over one block, 4 points per vector with a
    /// scalar tail (fewer than 4 points left, via `pred.within` so the
    /// tail agrees with the lanes bit for bit).
    ///
    /// Four independent 4-point groups run per iteration so their
    /// accumulator latency chains overlap, and hits collect in an
    /// integer vector (mask subtract) folded once at the end — no
    /// per-vector `movemask`/`popcnt` on the hot path.
    ///
    /// `D` is the compile-time dimension (`0` = use the runtime `dim`).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn block_hits_single<const D: usize>(
        metric: Metric,
        pred: &NeighborPredicate,
        q: &[f64],
        block: &[f64],
        dim: usize,
        thresh: f64,
    ) -> usize {
        let dim = if D != 0 { D } else { dim };
        let n = block.len() / dim;
        let t = _mm256_set1_pd(thresh);
        let mut cnt = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 16 <= n {
            let a0 = distance4(metric, q, &block[i * dim..], dim);
            let a1 = distance4(metric, q, &block[(i + 4) * dim..], dim);
            let a2 = distance4(metric, q, &block[(i + 8) * dim..], dim);
            let a3 = distance4(metric, q, &block[(i + 12) * dim..], dim);
            let m0 = _mm256_cmp_pd::<_CMP_LE_OQ>(a0, t);
            let m1 = _mm256_cmp_pd::<_CMP_LE_OQ>(a1, t);
            let m2 = _mm256_cmp_pd::<_CMP_LE_OQ>(a2, t);
            let m3 = _mm256_cmp_pd::<_CMP_LE_OQ>(a3, t);
            cnt = _mm256_sub_epi64(cnt, _mm256_castpd_si256(m0));
            cnt = _mm256_sub_epi64(cnt, _mm256_castpd_si256(m1));
            cnt = _mm256_sub_epi64(cnt, _mm256_castpd_si256(m2));
            cnt = _mm256_sub_epi64(cnt, _mm256_castpd_si256(m3));
            i += 16;
        }
        while i + 4 <= n {
            let acc = distance4(metric, q, &block[i * dim..], dim);
            let mask = _mm256_cmp_pd::<_CMP_LE_OQ>(acc, t);
            cnt = _mm256_sub_epi64(cnt, _mm256_castpd_si256(mask));
            i += 4;
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, cnt);
        let mut hits = (lanes[0] + lanes[1] + lanes[2] + lanes[3]) as usize;
        for p in block[i * dim..].chunks_exact(dim) {
            hits += usize::from(pred.within(q, p));
        }
        hits
    }

    /// Distance of 4 consecutive row-major points to `q`, one point per
    /// lane (squared for Euclidean). Dimensions accumulate in ascending
    /// order with a single accumulator — the scalar operation sequence.
    #[inline(always)]
    unsafe fn distance4(metric: Metric, q: &[f64], pts: &[f64], dim: usize) -> __m256d {
        if dim == 0 {
            return _mm256_setzero_pd();
        }
        let sign = _mm256_set1_pd(-0.0);
        let mut acc;
        let mut dd;
        // The first dimension seeds the accumulator (see `seed`); the
        // rest fold in ascending order — the scalar operation sequence.
        if dim >= 2 {
            // Dimension pairs: two coordinate columns per `columns2`
            // (half the shuffle-port traffic of a full 4x4 transpose).
            let (c0, c1) = columns2(pts, dim, 0);
            acc = seed(metric, _mm256_sub_pd(c0, _mm256_set1_pd(q[0])), sign);
            acc = accumulate(metric, acc, _mm256_sub_pd(c1, _mm256_set1_pd(q[1])), sign);
            dd = 2;
            while dd + 2 <= dim {
                let (c0, c1) = columns2(pts, dim, dd);
                acc = accumulate(metric, acc, _mm256_sub_pd(c0, _mm256_set1_pd(q[dd])), sign);
                acc = accumulate(
                    metric,
                    acc,
                    _mm256_sub_pd(c1, _mm256_set1_pd(q[dd + 1])),
                    sign,
                );
                dd += 2;
            }
        } else {
            let col = gather_column(pts, dim, 0);
            acc = seed(metric, _mm256_sub_pd(col, _mm256_set1_pd(q[0])), sign);
            dd = 1;
        }
        // Odd-dimension remainder: strided gather of one column.
        if dd < dim {
            let col = gather_column(pts, dim, dd);
            let g = _mm256_sub_pd(col, _mm256_set1_pd(q[dd]));
            acc = accumulate(metric, acc, g, sign);
        }
        acc
    }

    /// First-dimension accumulator seed: the gap term itself, skipping
    /// the fold into a zero accumulator. Bit-identical to the scalar
    /// fold: `0.0 + x == x` exactly for every `x` the gap terms produce
    /// (squares and absolute values are never `-0.0`, and `NaN`
    /// propagates the same), and for Chebyshev `max(|g|, 0.0)` keeps the
    /// scalar `f64::max` NaN-ignoring start (`MAXPD` returns its second
    /// operand — here `0.0` — when the gap is `NaN`).
    #[inline(always)]
    unsafe fn seed(metric: Metric, gap: __m256d, sign: __m256d) -> __m256d {
        match metric {
            Metric::Euclidean => _mm256_mul_pd(gap, gap),
            Metric::Manhattan => _mm256_andnot_pd(sign, gap),
            Metric::Chebyshev => _mm256_max_pd(_mm256_andnot_pd(sign, gap), _mm256_setzero_pd()),
        }
    }

    /// Folds one dimension's 4-lane gap into the running accumulator.
    ///
    /// For Chebyshev the gap is the **first** `maxpd` operand: `MAXPD`
    /// returns its second operand when either input is `NaN`, so a `NaN`
    /// gap yields the running accumulator — exactly `f64::max`'s
    /// NaN-ignoring fold in the scalar kernel.
    #[inline(always)]
    unsafe fn accumulate(metric: Metric, acc: __m256d, gap: __m256d, sign: __m256d) -> __m256d {
        match metric {
            Metric::Euclidean => _mm256_add_pd(acc, _mm256_mul_pd(gap, gap)),
            Metric::Manhattan => _mm256_add_pd(acc, _mm256_andnot_pd(sign, gap)),
            Metric::Chebyshev => _mm256_max_pd(_mm256_andnot_pd(sign, gap), acc),
        }
    }

    /// Loads coordinate columns `dd` and `dd + 1` of 4 consecutive
    /// points. Each 128-bit half-row load lands in its point's lane
    /// half via `insertf128` (fused with the load, off the shuffle
    /// port), so only the two `unpack`s hit the shuffle port — half the
    /// port-5 traffic of a 4x4 transpose per dimension.
    ///
    /// # Safety
    /// `pts` must hold at least 4 points of `dim >= dd + 2` coordinates.
    #[inline(always)]
    unsafe fn columns2(pts: &[f64], dim: usize, dd: usize) -> (__m256d, __m256d) {
        debug_assert!(pts.len() >= 3 * dim + dd + 2);
        let base = pts.as_ptr();
        // a = p0[dd] p0[dd+1] p2[dd] p2[dd+1]
        let a = _mm256_insertf128_pd::<1>(
            _mm256_castpd128_pd256(_mm_loadu_pd(base.add(dd))),
            _mm_loadu_pd(base.add(2 * dim + dd)),
        );
        // b = p1[dd] p1[dd+1] p3[dd] p3[dd+1]
        let b = _mm256_insertf128_pd::<1>(
            _mm256_castpd128_pd256(_mm_loadu_pd(base.add(dim + dd))),
            _mm_loadu_pd(base.add(3 * dim + dd)),
        );
        (_mm256_unpacklo_pd(a, b), _mm256_unpackhi_pd(a, b))
    }

    /// Gathers coordinate `dd` of 4 consecutive points (strided), with a
    /// contiguous-load fast path for `dim == 1`.
    #[inline(always)]
    unsafe fn gather_column(pts: &[f64], dim: usize, dd: usize) -> __m256d {
        if dim == 1 {
            _mm256_loadu_pd(pts.as_ptr())
        } else {
            _mm256_set_pd(pts[3 * dim + dd], pts[2 * dim + dd], pts[dim + dd], pts[dd])
        }
    }

    /// Query-parallel multi scan: queries are packed 4 per vector in SoA
    /// layout (`soa[dd * 4 + lane]`), the tile is walked once per block,
    /// and each point is broadcast against the whole query group — one
    /// tile load serves up to 4 queries.
    ///
    /// Per-query `found`/`scanned`/`done` bookkeeping keeps the result
    /// bit-identical to independent single-query scans, including the
    /// exact early-exit position via the shared scalar block replay.
    ///
    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn count_multi(
        pred: &NeighborPredicate,
        queries: &[f64],
        tile: &[f64],
        needs: &[usize],
        dim: usize,
    ) -> Vec<TileOutcome> {
        let nq = needs.len();
        let n_groups = nq.div_ceil(4);
        // SoA pack; lanes past nq repeat the last query (their counts
        // are computed and discarded).
        let mut soa = vec![0.0f64; n_groups * dim * 4];
        for g in 0..n_groups {
            for lane in 0..4 {
                let qi = (g * 4 + lane).min(nq - 1);
                for dd in 0..dim {
                    soa[(g * dim + dd) * 4 + lane] = queries[qi * dim + dd];
                }
            }
        }

        let thresh = _mm256_set1_pd(lane_threshold(pred));
        let metric = pred.metric();
        let mut found = vec![0usize; nq];
        let mut scanned = vec![0usize; nq];
        let mut done = vec![false; nq];
        let mut live = nq;
        for (qi, &need) in needs.iter().enumerate() {
            if need == 0 {
                done[qi] = true;
                live -= 1;
            }
        }

        for block in tile.chunks(dim * BLOCK_POINTS) {
            if live == 0 {
                break;
            }
            let pts = block.len() / dim;
            for g in 0..n_groups {
                let lanes = (nq - g * 4).min(4);
                if done[g * 4..g * 4 + lanes].iter().all(|&d| d) {
                    continue;
                }
                let gq = &soa[g * dim * 4..(g + 1) * dim * 4];
                // Monomorphize hot dimensionalities (`0` = runtime dim):
                // const trip counts let LLVM unroll the per-dimension
                // loops that a runtime `dim` bound keeps rolled.
                let counts = match dim {
                    1 => block_hits_multi::<1>(metric, gq, block, dim, thresh),
                    2 => block_hits_multi::<2>(metric, gq, block, dim, thresh),
                    3 => block_hits_multi::<3>(metric, gq, block, dim, thresh),
                    4 => block_hits_multi::<4>(metric, gq, block, dim, thresh),
                    5 => block_hits_multi::<5>(metric, gq, block, dim, thresh),
                    6 => block_hits_multi::<6>(metric, gq, block, dim, thresh),
                    7 => block_hits_multi::<7>(metric, gq, block, dim, thresh),
                    8 => block_hits_multi::<8>(metric, gq, block, dim, thresh),
                    _ => block_hits_multi::<0>(metric, gq, block, dim, thresh),
                };
                for (lane, &hits) in counts.iter().enumerate().take(lanes) {
                    let qi = g * 4 + lane;
                    if done[qi] {
                        continue;
                    }
                    let hits = hits as usize;
                    if found[qi] + hits >= needs[qi] {
                        let q = &queries[qi * dim..(qi + 1) * dim];
                        let (f, examined) = replay_block(pred, q, block, dim, needs[qi], found[qi]);
                        found[qi] = f;
                        scanned[qi] += examined;
                        done[qi] = true;
                        live -= 1;
                    } else {
                        found[qi] += hits;
                        scanned[qi] += pts;
                    }
                }
            }
        }
        (0..nq)
            .map(|qi| TileOutcome {
                found: found[qi],
                scanned: scanned[qi],
            })
            .collect()
    }

    /// Query columns a group keeps in registers for a whole block; the
    /// planner's hot dimensionalities all fit.
    const HOIST_DIMS: usize = 8;

    /// Per-lane hit counts of one block against a 4-query SoA group.
    /// The `LE` mask is all-ones (`-1` as i64) per hitting lane, so
    /// subtracting it from an integer accumulator counts hits without
    /// any cross-lane reduction until the block ends.
    ///
    /// For `dim <= HOIST_DIMS` the query columns are loaded once per
    /// block and several points run per iteration with independent
    /// accumulator chains (4 chains at `dim <= 4`, 2 above) — each
    /// chain still folds dimensions in ascending order with a single
    /// accumulator, so bit-identity is untouched.
    ///
    /// `D` is the compile-time dimension (`0` = use the runtime `dim`).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn block_hits_multi<const D: usize>(
        metric: Metric,
        gq: &[f64],
        block: &[f64],
        dim: usize,
        thresh: __m256d,
    ) -> [u64; 4] {
        let dim = if D != 0 { D } else { dim };
        let sign = _mm256_set1_pd(-0.0);
        let mut cnt = _mm256_setzero_si256();
        if dim <= HOIST_DIMS {
            let mut qcols = [_mm256_setzero_pd(); HOIST_DIMS];
            for (dd, qc) in qcols.iter_mut().enumerate().take(dim) {
                *qc = _mm256_loadu_pd(gq.as_ptr().add(dd * 4));
            }
            // One point's distance to the group, dimension 0 seeding
            // the chain (see `seed`).
            let point_acc = |p: &[f64]| {
                let mut acc = seed(metric, _mm256_sub_pd(qcols[0], _mm256_set1_pd(p[0])), sign);
                for dd in 1..dim {
                    let g = _mm256_sub_pd(qcols[dd], _mm256_set1_pd(p[dd]));
                    acc = accumulate(metric, acc, g, sign);
                }
                acc
            };
            // Short chains (small dim) need more in-flight points to
            // cover the accumulate latency; 4 chains at dim <= 4, 2
            // above. `D` makes the width a compile-time choice.
            let rest = if dim <= 4 {
                let mut quads = block.chunks_exact(dim * 4);
                for pp in &mut quads {
                    let a0 = point_acc(&pp[..dim]);
                    let a1 = point_acc(&pp[dim..2 * dim]);
                    let a2 = point_acc(&pp[2 * dim..3 * dim]);
                    let a3 = point_acc(&pp[3 * dim..]);
                    let m0 = _mm256_cmp_pd::<_CMP_LE_OQ>(a0, thresh);
                    let m1 = _mm256_cmp_pd::<_CMP_LE_OQ>(a1, thresh);
                    let m2 = _mm256_cmp_pd::<_CMP_LE_OQ>(a2, thresh);
                    let m3 = _mm256_cmp_pd::<_CMP_LE_OQ>(a3, thresh);
                    cnt = _mm256_sub_epi64(cnt, _mm256_castpd_si256(m0));
                    cnt = _mm256_sub_epi64(cnt, _mm256_castpd_si256(m1));
                    cnt = _mm256_sub_epi64(cnt, _mm256_castpd_si256(m2));
                    cnt = _mm256_sub_epi64(cnt, _mm256_castpd_si256(m3));
                }
                quads.remainder()
            } else {
                let mut pairs = block.chunks_exact(dim * 2);
                for pp in &mut pairs {
                    let a0 = point_acc(&pp[..dim]);
                    let a1 = point_acc(&pp[dim..]);
                    let m0 = _mm256_cmp_pd::<_CMP_LE_OQ>(a0, thresh);
                    let m1 = _mm256_cmp_pd::<_CMP_LE_OQ>(a1, thresh);
                    cnt = _mm256_sub_epi64(cnt, _mm256_castpd_si256(m0));
                    cnt = _mm256_sub_epi64(cnt, _mm256_castpd_si256(m1));
                }
                pairs.remainder()
            };
            for p in rest.chunks_exact(dim) {
                let mask = _mm256_cmp_pd::<_CMP_LE_OQ>(point_acc(p), thresh);
                cnt = _mm256_sub_epi64(cnt, _mm256_castpd_si256(mask));
            }
        } else {
            for p in block.chunks_exact(dim) {
                let mut acc = _mm256_setzero_pd();
                for (dd, &pc) in p.iter().enumerate() {
                    let qcol = _mm256_loadu_pd(gq.as_ptr().add(dd * 4));
                    let g = _mm256_sub_pd(qcol, _mm256_set1_pd(pc));
                    acc = accumulate(metric, acc, g, sign);
                }
                let mask = _mm256_cmp_pd::<_CMP_LE_OQ>(acc, thresh);
                cnt = _mm256_sub_epi64(cnt, _mm256_castpd_si256(mask));
            }
        }
        let mut out = [0u64; 4];
        _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, cnt);
        out
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::*;
    use std::arch::aarch64::*;

    /// Point-parallel single-query scan, 2 points per 128-bit vector.
    /// Same blockwise skeleton and scalar replay as the AVX2 and scalar
    /// kernels; per-dimension gathers are two-lane combines.
    ///
    /// # Safety
    /// NEON is baseline on aarch64; no extra runtime check is required.
    pub(super) unsafe fn count_single(
        pred: &NeighborPredicate,
        q: &[f64],
        tile: &[f64],
        dim: usize,
        need: usize,
    ) -> TileOutcome {
        let thresh = lane_threshold(pred);
        let metric = pred.metric();
        let mut found = 0usize;
        let mut scanned = 0usize;
        for block in tile.chunks(dim * BLOCK_POINTS) {
            let hits = block_hits_single(metric, pred, q, block, dim, thresh);
            if found + hits >= need {
                let (f, examined) = replay_block(pred, q, block, dim, need, found);
                return TileOutcome {
                    found: f,
                    scanned: scanned + examined,
                };
            }
            found += hits;
            scanned += block.len() / dim;
        }
        TileOutcome { found, scanned }
    }

    /// Branchless hit count over one block, 2 points per vector with a
    /// `pred.within` scalar tail.
    unsafe fn block_hits_single(
        metric: Metric,
        pred: &NeighborPredicate,
        q: &[f64],
        block: &[f64],
        dim: usize,
        thresh: f64,
    ) -> usize {
        let n = block.len() / dim;
        let t = vdupq_n_f64(thresh);
        let mut hits = 0usize;
        let mut i = 0usize;
        while i + 2 <= n {
            let pts = &block[i * dim..];
            let mut acc = vdupq_n_f64(0.0);
            for dd in 0..dim {
                let col = vcombine_f64(
                    vld1_f64(pts.as_ptr().add(dd)),
                    vld1_f64(pts.as_ptr().add(dim + dd)),
                );
                let g = vsubq_f64(col, vdupq_n_f64(q[dd]));
                acc = match metric {
                    Metric::Euclidean => vaddq_f64(acc, vmulq_f64(g, g)),
                    Metric::Manhattan => vaddq_f64(acc, vabsq_f64(g)),
                    // maxNum (NaN-ignoring) to mirror the scalar
                    // `f64::max` fold exactly.
                    Metric::Chebyshev => vmaxnmq_f64(acc, vabsq_f64(g)),
                };
            }
            let m = vcleq_f64(acc, t);
            hits += (vgetq_lane_u64::<0>(m) >> 63) as usize;
            hits += (vgetq_lane_u64::<1>(m) >> 63) as usize;
            i += 2;
        }
        for p in block[i * dim..].chunks_exact(dim) {
            hits += usize::from(pred.within(q, p));
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::super::NeighborPredicate;
    use crate::metric::Metric;
    use proptest::prelude::*;

    const METRICS: [Metric; 3] = [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev];

    // With the `simd` feature on supported hardware the dispatched path
    // must be bit-identical to the scalar tiles — outcome and early-exit
    // position both.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn dispatched_backend_matches_scalar_tiles(
            dim in 1usize..9,
            n_points in 0usize..70,
            need in 0usize..10,
            r in 0.1f64..4.0,
            seed_coords in proptest::collection::vec(-3.0f64..3.0, 1..500),
            metric_sel in 0usize..3,
        ) {
            let metric = METRICS[metric_sel];
            let want = dim * (n_points + 1);
            let coords: Vec<f64> = (0..want)
                .map(|i| seed_coords[i % seed_coords.len()])
                .collect();
            let (q, tile) = coords.split_at(dim);
            let pred = NeighborPredicate::with_metric(metric, r);
            let fast = pred.count_within_tile(q, tile, need);
            let scalar = pred.count_within_tile_scalar(q, tile, need);
            prop_assert_eq!(fast, scalar, "metric {:?} dim {} need {}", metric, dim, need);
        }
    }

    #[test]
    fn backend_is_reported() {
        // Whatever the CPU, the active backend must be a stable name.
        let b = crate::kernel::active_backend();
        assert!(["scalar", "avx2", "neon"].contains(&b.name()));
    }
}

//! Opt-in `f32` tile mirrors used as a conservative prefilter.
//!
//! A [`FilterTile`] stores an `f32` copy of a columnar tile. Scanning it
//! costs half the memory traffic of the `f64` tile, but `f32` distances
//! are inexact — so the prefilter never *decides* a point on its own.
//! Instead it classifies each point against an **error-inflated shell**
//! around the threshold:
//!
//! * `f32` distance `> r + E` (or `r² + E₂` for Euclidean): the true
//!   `f64` distance cannot be `≤ r`, the point is definitely out;
//! * `f32` distance `< r − E`: definitely in;
//! * otherwise the point lies inside the shell and is re-evaluated with
//!   the exact `f64` predicate.
//!
//! The inflation bound `E` is derived in DESIGN.md §5b from the `f32`
//! unit roundoff `ε = 2⁻²³` and the largest coordinate magnitude `M`
//! seen by the scan (tile *and* query): each per-dimension gap carries
//! at most a few `M·ε` of rounding error, and summing `d` squared gaps
//! compounds to `O(d²M²ε)` for Euclidean, `O(d²Mε)` for L1, and
//! `O(Mε)` for L∞. The constants used here (32, 16, 8) are several
//! times the worst case, so the shell is conservative: every point the
//! prefilter decides outright would be decided the same way by `f64`
//! math, and the result — count *and* early-exit position — is
//! bit-identical to the scalar scan. Non-finite coordinates make the
//! bound infinite, which degrades safely to rechecking every point.

use super::{NeighborPredicate, TileOutcome, BLOCK_POINTS};
use crate::metric::Metric;

/// An `f32` mirror of a columnar coordinate tile, plus the coordinate
/// magnitude bound its error analysis needs.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterTile {
    dim: usize,
    coords: Vec<f32>,
    max_abs: f64,
}

impl FilterTile {
    /// Mirrors `tile` (a columnar block of `dim`-dimensional points)
    /// into `f32` storage.
    ///
    /// # Panics
    /// If `dim` is zero or `tile` is not a whole number of points.
    pub fn build(tile: &[f64], dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(tile.len() % dim, 0, "tile is not a whole number of points");
        let mut max_abs = 0.0f64;
        let coords = tile
            .iter()
            .map(|&v| {
                // NaN propagates into max_abs as non-finite via the
                // comparison below staying false only for NaN, so force
                // it through explicitly.
                if v.is_nan() {
                    max_abs = f64::INFINITY;
                } else if v.abs() > max_abs {
                    max_abs = v.abs();
                }
                v as f32
            })
            .collect();
        FilterTile {
            dim,
            coords,
            max_abs,
        }
    }

    /// The dimensionality the mirror was built with.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points mirrored.
    #[inline]
    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    /// Whether the mirror holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// The largest absolute coordinate in the mirror (infinite if any
    /// coordinate was non-finite).
    #[inline]
    pub fn max_abs(&self) -> f64 {
        self.max_abs
    }

    /// The raw `f32` coordinates, columnar like the source tile.
    #[inline]
    pub fn coords(&self) -> &[f32] {
        &self.coords
    }
}

/// Per-point classification by the `f32` prefilter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    /// `f32` distance is below the shell: certainly a neighbor.
    In,
    /// `f32` distance is above the shell: certainly not a neighbor.
    Out,
    /// Inside the shell: needs the exact `f64` predicate.
    Recheck,
}

impl NeighborPredicate {
    /// Counts the points of `tile` within `r` of `query`, consulting the
    /// `f32` mirror `filter` first and touching the `f64` tile only for
    /// points inside the error-inflated shell around `r`.
    ///
    /// `filter` must mirror exactly `tile` (same points, same order,
    /// same dimension). Results are bit-identical to
    /// [`Self::count_within_tile`]: same count, same early-exit
    /// `scanned` position, per-block granularity preserved.
    ///
    /// # Panics
    /// If the mirror's shape disagrees with `query`/`tile`.
    pub fn count_within_tile_prefiltered(
        &self,
        query: &[f64],
        tile: &[f64],
        filter: &FilterTile,
        need: usize,
    ) -> TileOutcome {
        let dim = query.len();
        assert_eq!(filter.dim, dim, "filter dimension mismatch");
        assert_eq!(filter.coords.len(), tile.len(), "filter length mismatch");
        if need == 0 {
            return TileOutcome {
                found: 0,
                scanned: 0,
            };
        }

        let mut q_max = 0.0f64;
        for &v in query {
            if v.is_nan() {
                q_max = f64::INFINITY;
            } else if v.abs() > q_max {
                q_max = v.abs();
            }
        }
        let m = filter.max_abs.max(q_max);
        let eps = f32::EPSILON as f64;
        let d = dim as f64;
        // Shell half-widths; see module docs and DESIGN.md §5b.
        let (lo, hi) = match self.metric {
            Metric::Euclidean => {
                let e2 = 32.0 * d * d * m * m * eps;
                (self.r_sq - e2, self.r_sq + e2)
            }
            Metric::Manhattan => {
                let e1 = 16.0 * d * d * m * eps;
                (self.r - e1, self.r + e1)
            }
            Metric::Chebyshev => {
                let e = 8.0 * m * eps;
                (self.r - e, self.r + e)
            }
        };

        let qf: Vec<f32> = query.iter().map(|&v| v as f32).collect();
        let mut found = 0usize;
        let mut scanned = 0usize;
        let step = dim * BLOCK_POINTS;
        for (blk, block) in filter.coords.chunks(step).enumerate() {
            let pts = block.len() / dim;
            let mut hits = 0usize;
            for (i, p) in block.chunks_exact(dim).enumerate() {
                let dist = f32_distance(self.metric, p, &qf);
                let class = if dist.is_finite() && dist < lo {
                    Class::In
                } else if dist > hi {
                    Class::Out
                } else {
                    Class::Recheck
                };
                hits += usize::from(match class {
                    Class::In => true,
                    Class::Out => false,
                    Class::Recheck => {
                        let p64 = &tile[blk * step + i * dim..blk * step + (i + 1) * dim];
                        self.within(query, p64)
                    }
                });
            }
            if found + hits >= need {
                // Exact early-exit position: replay this block with the
                // `f64` predicate, identical to the scalar kernels.
                for (i, _) in block.chunks_exact(dim).enumerate() {
                    let p64 = &tile[blk * step + i * dim..blk * step + (i + 1) * dim];
                    if self.within(query, p64) {
                        found += 1;
                        if found >= need {
                            return TileOutcome {
                                found,
                                scanned: scanned + i + 1,
                            };
                        }
                    }
                }
                unreachable!("blockwise count promised `need` is reached in this block");
            }
            found += hits;
            scanned += pts;
        }
        TileOutcome { found, scanned }
    }
}

/// The `f32` scan distance: squared for Euclidean (compared against the
/// inflated `r²` shell), plain for L1/L∞. Accumulated in `f32` — the
/// error analysis already budgets for that — and widened at the end.
#[inline]
fn f32_distance(metric: Metric, p: &[f32], q: &[f32]) -> f64 {
    match metric {
        Metric::Euclidean => {
            let mut acc = 0.0f32;
            for (x, y) in p.iter().zip(q.iter()) {
                let d = x - y;
                acc += d * d;
            }
            acc as f64
        }
        Metric::Manhattan => {
            let mut acc = 0.0f32;
            for (x, y) in p.iter().zip(q.iter()) {
                acc += (x - y).abs();
            }
            acc as f64
        }
        Metric::Chebyshev => {
            let mut m = 0.0f32;
            for (x, y) in p.iter().zip(q.iter()) {
                m = m.max((x - y).abs());
            }
            m as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const METRICS: [Metric; 3] = [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev];

    fn pred(metric: Metric, r: f64) -> NeighborPredicate {
        NeighborPredicate::with_metric(metric, r)
    }

    #[test]
    fn mirror_shape() {
        let tile = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let f = FilterTile::build(&tile, 3);
        assert_eq!(f.dim(), 3);
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
        assert_eq!(f.max_abs(), 6.0);
        assert_eq!(f.coords().len(), 6);
        let empty = FilterTile::build(&[], 2);
        assert!(empty.is_empty());
    }

    #[test]
    fn nan_coordinates_degrade_to_recheck() {
        let tile = [f64::NAN, 0.5, 100.0];
        let f = FilterTile::build(&tile, 1);
        assert!(f.max_abs().is_infinite());
        for m in METRICS {
            let out = pred(m, 1.0).count_within_tile_prefiltered(&[0.0], &tile, &f, usize::MAX);
            let want = pred(m, 1.0).count_within_tile(&[0.0], &tile, usize::MAX);
            assert_eq!(out, want, "{m:?}");
        }
    }

    /// Coordinates exactly representable in f32 but whose distance sits
    /// exactly on r: only the f64 recheck can decide them, and it must
    /// decide them inclusively.
    #[test]
    fn exact_boundary_points_are_inclusive() {
        // d=2, gaps (3,4): Euclid dist 5, L1 7, L∞ 4 — all exact.
        let tile = [3.0, 4.0, 3.0, 4.0000001];
        let f = FilterTile::build(&tile, 2);
        let q = [0.0, 0.0];
        for (m, r) in [
            (Metric::Euclidean, 5.0),
            (Metric::Manhattan, 7.0),
            (Metric::Chebyshev, 4.0),
        ] {
            let out = pred(m, r).count_within_tile_prefiltered(&q, &tile, &f, usize::MAX);
            let want = pred(m, r).count_within_tile(&q, &tile, usize::MAX);
            assert_eq!(out, want, "{m:?}");
            assert_eq!(out.found, 1, "{m:?} boundary point must count");
        }
    }

    /// Coordinates that f32 cannot distinguish (2²⁴ and 2²⁴+1) but f64
    /// can: the shell must route them to the exact recheck.
    #[test]
    fn f32_indistinguishable_points_are_decided_by_f64() {
        let q = [16777216.0];
        let tile = [16777217.0, 16777216.0];
        let f = FilterTile::build(&tile, 1);
        for m in METRICS {
            // r = 0.5: the first point is out (gap 1), the second in.
            let out = pred(m, 0.5).count_within_tile_prefiltered(&q, &tile, &f, usize::MAX);
            let want = pred(m, 0.5).count_within_tile(&q, &tile, usize::MAX);
            assert_eq!(out, want, "{m:?}");
            assert_eq!(out.found, 1, "{m:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]
        #[test]
        fn prefiltered_scan_is_bit_identical(
            dim in 1usize..6,
            n_points in 0usize..70,
            need in 0usize..10,
            r in 0.1f64..4.0,
            seed_coords in proptest::collection::vec(-3.0f64..3.0, 1..400),
            metric_sel in 0usize..3,
        ) {
            let metric = METRICS[metric_sel];
            let want = dim * (n_points + 1);
            let coords: Vec<f64> = (0..want)
                .map(|i| seed_coords[i % seed_coords.len()])
                .collect();
            let (q, tile) = coords.split_at(dim);
            let filter = FilterTile::build(tile, dim);
            let fast = pred(metric, r).count_within_tile_prefiltered(q, tile, &filter, need);
            let exact = pred(metric, r).count_within_tile(q, tile, need);
            prop_assert_eq!(fast, exact, "metric {:?} dim {} need {}", metric, dim, need);
        }
    }
}

//! Locality-aware cost estimation.
//!
//! The Section IV cost models (Lemmas 4.1/4.2) describe a partition by a
//! single average density. Real partitions — especially those produced by
//! grid or cardinality splits over skewed data — mix densities, and the
//! per-point cost of every detector is driven by the density *around the
//! point*, not the partition average. The [`LocalCostEstimator`] therefore
//! aggregates per-point costs using mini-bucket local densities, and adds
//! the constant per-partition task overhead a real reducer pays. It is
//! calibrated against the detectors as implemented in `dod-detect` (e.g.
//! the block-restricted Cell-Based fallback), and is what CDriven and the
//! DMT planner use by default; the `ablation_cost_model` bench compares
//! its predictions (and the paper model's) against measured reduce times.

use crate::minibucket::MiniBucketGrid;
use crate::plan::PartitionPlan;
use dod_core::{kernel::NeighborPredicate, OutlierParams, PointSet, Rect};
use dod_detect::cost::{AlgorithmKind, CostModel, CostTerms, CostWeights};

/// Abstract work units charged per partition independent of its content
/// (task setup, partition materialization, detector construction),
/// expressed in distance-evaluation equivalents.
pub const PARTITION_OVERHEAD_OPS: f64 = 20_000.0;

/// Cap on the pairwise probes (`query points × tile points`) the
/// kernel-density refinement performs; above it the probe set is strided
/// down and unprobed points fall back to ratio-corrected bucket density.
const KERNEL_DENSITY_MAX_PAIRS: usize = 32 * 1024 * 1024;

/// Per-partition cost estimates for every candidate algorithm.
#[derive(Debug, Clone)]
pub struct PartitionEstimate {
    /// Estimated real cardinality.
    pub n_est: f64,
    /// Hit probability `μ = A(p)/A(D)` of the partition (Lemma 4.1's
    /// density term), recorded for plan introspection.
    pub hit_mu: f64,
    /// `(algorithm, estimated ops)` for each candidate, in candidate
    /// order.
    pub costs: Vec<(AlgorithmKind, f64)>,
    /// Raw (unweighted) pair/structural op counts per candidate, aligned
    /// with `costs`. Excludes [`PARTITION_OVERHEAD_OPS`].
    pub terms: Vec<CostTerms>,
}

impl PartitionEstimate {
    /// The cheapest candidate.
    pub fn best(&self) -> (AlgorithmKind, f64) {
        self.costs
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
            .expect("at least one candidate")
    }

    /// The estimated cost of a specific algorithm (falls back to the
    /// best candidate when absent).
    pub fn cost_of(&self, kind: AlgorithmKind) -> f64 {
        self.costs
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, c)| *c)
            .unwrap_or_else(|| self.best().1)
    }
}

/// Bucket-density-based cost estimator.
#[derive(Debug, Clone)]
pub struct LocalCostEstimator {
    buckets: MiniBucketGrid,
    params: OutlierParams,
    /// 1 / sampling rate: each sample point stands for this many points.
    scale: f64,
    ball: f64,
    /// Op-class weights charged to the per-pair vs structural cost terms
    /// (unit by default — the legacy behaviour).
    weights: CostWeights,
    /// Per-sample-point densities measured through the kernel layer
    /// (NaN where the point was not probed), plus the measured-vs-bucket
    /// ratio used for unprobed points. `None` until
    /// [`LocalCostEstimator::with_kernel_density`] opts in.
    measured: Option<MeasuredDensity>,
}

#[derive(Debug, Clone)]
struct MeasuredDensity {
    rho: Vec<f64>,
    bucket_ratio: f64,
}

impl LocalCostEstimator {
    /// Builds the estimator from the preprocessing sample.
    ///
    /// `buckets_per_dim` bounds the density-estimation resolution (the
    /// same mini buckets DSHC uses; 32 is a good default in 2-d).
    pub fn new(
        domain: &Rect,
        sample: &PointSet,
        sample_rate: f64,
        params: OutlierParams,
        buckets_per_dim: usize,
    ) -> Self {
        // Clamp resolution so buckets^d stays tractable (see Dmt).
        let dim = domain.dim() as f64;
        let cap = (65_536f64).powf(1.0 / dim).floor() as usize;
        let per_dim = buckets_per_dim.clamp(1, cap.max(1));
        let buckets = MiniBucketGrid::build(domain, per_dim, sample)
            .expect("sample and domain dimensions agree");
        let scale = if sample_rate > 0.0 {
            1.0 / sample_rate
        } else {
            1.0
        };
        LocalCostEstimator {
            buckets,
            params,
            scale,
            ball: params.metric.ball_volume(domain.dim(), params.r),
            weights: CostWeights::UNIT,
            measured: None,
        }
    }

    /// Replaces the op-class weights (builder style). Pass the weights
    /// from a measured
    /// [`CalibrationProfile`](dod_detect::calibration::CalibrationProfile)
    /// to make estimates comparable in real time rather than in legacy
    /// unit ops.
    pub fn with_weights(mut self, weights: CostWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Replaces bucket-histogram density estimation with densities
    /// measured through the kernel layer: each probed sample point is
    /// scanned against the whole sample with
    /// [`NeighborPredicate::count_within_tile`] — the same code path the
    /// detectors pay for — so the λ feeding the per-pair cost terms is
    /// the λ the calibrated model charges. Probing is exhaustive up to
    /// `KERNEL_DENSITY_MAX_PAIRS` pairwise tests; beyond that a strided
    /// probe subset is measured and the remaining points use bucket
    /// densities corrected by the measured/bucket ratio.
    pub fn with_kernel_density(mut self, sample: &PointSet) -> Self {
        let s = sample.len();
        if s < 2 || self.ball <= 0.0 {
            return self;
        }
        let stride = (s * s).div_ceil(KERNEL_DENSITY_MAX_PAIRS).max(1);
        let pred = NeighborPredicate::with_metric(self.params.metric, self.params.r);
        let tile = sample.as_flat();
        let mut rho = vec![f64::NAN; s];
        let (mut measured_sum, mut bucket_sum, mut probes) = (0.0f64, 0.0f64, 0usize);
        let mut i = 0;
        while i < s {
            let q = sample.point(i);
            // `found` includes the query point itself (distance 0).
            let found = pred.count_within_tile(q, tile, usize::MAX).found;
            let lambda = (found.saturating_sub(1)) as f64 * self.scale;
            rho[i] = lambda / self.ball;
            measured_sum += lambda;
            bucket_sum += self.buckets.density_at(q) * self.scale * self.ball;
            probes += 1;
            i += stride;
        }
        let bucket_ratio = if probes > 0 && bucket_sum > 0.0 && measured_sum > 0.0 {
            measured_sum / bucket_sum
        } else {
            1.0
        };
        self.measured = Some(MeasuredDensity { rho, bucket_ratio });
        self
    }

    /// The real-point density around sample point `i` (coordinates `p`).
    fn local_density(&self, i: usize, p: &[f64]) -> f64 {
        if let Some(m) = &self.measured {
            let measured = m.rho[i];
            if measured.is_finite() {
                return measured;
            }
            return self.buckets.density_at(p) * self.scale * m.bucket_ratio;
        }
        self.buckets.density_at(p) * self.scale
    }

    /// Estimates every partition of `plan` for the given `candidates`.
    pub fn estimate(
        &self,
        plan: &PartitionPlan,
        sample: &PointSet,
        candidates: &[AlgorithmKind],
    ) -> Vec<PartitionEstimate> {
        assert!(!candidates.is_empty(), "need at least one candidate");
        let m = plan.num_partitions();
        // Bucket sample points by partition.
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); m];
        for (i, p) in sample.iter().enumerate() {
            members[plan.locate(p) as usize].push(i as u32);
        }
        (0..m)
            .map(|pid| {
                let idxs = &members[pid];
                let n_est = idxs.len() as f64 * self.scale;
                let volume = plan.rect(pid).volume();
                let hit_mu = if volume <= 0.0 {
                    1.0
                } else {
                    (self.ball / volume).min(1.0)
                };
                let mut costs = Vec::with_capacity(candidates.len());
                let mut terms = Vec::with_capacity(candidates.len());
                for &kind in candidates {
                    let t = self.subset_terms(sample, idxs, kind, volume);
                    costs.push((kind, t.weighted(self.weights) + PARTITION_OVERHEAD_OPS));
                    terms.push(t);
                }
                PartitionEstimate {
                    n_est,
                    hit_mu,
                    costs,
                    terms,
                }
            })
            .collect()
    }

    /// Estimated cost of running `kind` over the region whose sample
    /// points are `idxs` and whose footprint volume is `volume`
    /// (including the per-partition overhead).
    pub fn subset_cost(
        &self,
        sample: &PointSet,
        idxs: &[u32],
        kind: AlgorithmKind,
        volume: f64,
    ) -> f64 {
        self.subset_terms(sample, idxs, kind, volume)
            .weighted(self.weights)
            + PARTITION_OVERHEAD_OPS
    }

    /// Raw (unweighted) pair/structural op counts of running `kind` over
    /// the region whose sample points are `idxs` — the terms behind
    /// [`LocalCostEstimator::subset_cost`], excluding the per-partition
    /// overhead.
    pub fn subset_terms(
        &self,
        sample: &PointSet,
        idxs: &[u32],
        kind: AlgorithmKind,
        volume: f64,
    ) -> CostTerms {
        let n_est = idxs.len() as f64 * self.scale;
        match kind {
            AlgorithmKind::NestedLoop => self.nested_loop_terms(sample, idxs, n_est),
            AlgorithmKind::CellBased => self.cell_based_terms(sample, idxs, n_est),
            AlgorithmKind::CellBasedFullScan => self.cell_based_full_terms(sample, idxs, n_est),
            // Index/pivot/reference: partition-level heuristics from the
            // paper-style model.
            other => {
                CostModel::new(self.params, sample.dim()).cost_terms(other, n_est as usize, volume)
            }
        }
    }

    /// The op-class weights the estimator charges (unit unless replaced
    /// via [`LocalCostEstimator::with_weights`]).
    pub fn weights(&self) -> CostWeights {
        self.weights
    }

    /// Per-point Nested-Loop trial count at local density `rho`:
    /// outliers (fewer than `k` neighbors) exhaust the scan (`n_p`
    /// trials), inliers need `k / p_hit = k·n_p / neighbors`. The
    /// outlier event is Poisson-smoothed so the estimate has no cliff at
    /// `neighbors == k`.
    fn nl_per_point(&self, rho: f64, n_est: f64) -> f64 {
        let k = self.params.k as f64;
        let lambda = rho * self.ball; // expected neighbors (±1 for self)
        let p_outlier = poisson_cdf(self.params.k.saturating_sub(1), lambda);
        let inlier_trials = (k * n_est / lambda.max(k)).min(n_est);
        p_outlier * n_est + (1.0 - p_outlier) * inlier_trials
    }

    /// Sum of per-point Nested-Loop trial counts — pure pair ops.
    fn nested_loop_terms(&self, sample: &PointSet, idxs: &[u32], n_est: f64) -> CostTerms {
        if idxs.is_empty() || n_est <= 1.0 {
            return CostTerms::default();
        }
        let mut pair_ops = 0.0;
        for &i in idxs {
            let rho = self.local_density(i as usize, sample.point(i as usize));
            pair_ops += self.nl_per_point(rho, n_est) * self.scale;
        }
        CostTerms {
            pair_ops,
            structural_ops: 0.0,
        }
    }

    /// The full-scan Cell-Based variant: indexing plus, for unpruned
    /// points, the Nested-Loop per-point trials — the Lemma 4.2 case-3
    /// charge, evaluated with local densities and Poisson-smoothed
    /// pruning.
    fn cell_based_full_terms(&self, sample: &PointSet, idxs: &[u32], n_est: f64) -> CostTerms {
        if idxs.is_empty() {
            return CostTerms::default();
        }
        let dim = sample.dim() as f64;
        // Indexing is structural; the surviving fallback scan is pair ops.
        let mut pair_ops = 0.0;
        for &i in idxs {
            let rho = self.local_density(i as usize, sample.point(i as usize));
            let survive = self.unpruned_probability(rho, dim);
            pair_ops += survive * self.nl_per_point(rho, n_est) * self.scale;
        }
        CostTerms {
            pair_ops,
            structural_ops: 2.0 * n_est,
        }
    }

    /// Probability that a point's cell survives both pruning rules, with
    /// cell-block counts modelled as Poisson around their expectations
    /// (a deterministic threshold has a cliff exactly at the interesting
    /// densities; real counts fluctuate).
    fn unpruned_probability(&self, rho: f64, dim: f64) -> f64 {
        let k = self.params.k;
        let side = self
            .params
            .metric
            .cell_side_for(self.params.r, dim as usize);
        let cell_vol = side.powf(dim);
        let inlier_block = 3f64.powf(dim) * cell_vol;
        let m_radius = (self.params.r / side).ceil();
        let candidate_block = (2.0 * m_radius + 1.0).powf(dim) * cell_vol;
        // Inlier rule prunes when the 3^d block holds > k points
        // (including the point itself): P(Pois(λ1) >= k).
        let p_inlier = 1.0 - poisson_cdf(k.saturating_sub(1), inlier_block * rho);
        // Outlier rule prunes when the candidate block holds <= k points:
        // P(Pois(λ2) <= k - 1).
        let p_outlier = poisson_cdf(k.saturating_sub(1), candidate_block * rho);
        (1.0 - p_inlier - p_outlier).clamp(0.0, 1.0)
    }

    /// Indexing (`~2 ops/point`) plus per-point candidate-block work with
    /// the two pruning rules short-circuiting, mirroring the
    /// block-restricted implementation.
    fn cell_based_terms(&self, sample: &PointSet, idxs: &[u32], n_est: f64) -> CostTerms {
        if idxs.is_empty() {
            return CostTerms::default();
        }
        let dim = sample.dim() as f64;
        let side = self
            .params
            .metric
            .cell_side_for(self.params.r, sample.dim());
        let cell_vol = side.powf(dim);
        let m_radius = (self.params.r / side).ceil();
        let candidate_block = (2.0 * m_radius + 1.0).powf(dim) * cell_vol;
        // Hashing + cell bookkeeping is structural; the candidate-block
        // scan performs distance predicates (pair ops).
        let mut pair_ops = 0.0;
        for &i in idxs {
            let rho = self.local_density(i as usize, sample.point(i as usize));
            let survive = self.unpruned_probability(rho, dim);
            let per_point = survive * (candidate_block * rho).min(n_est);
            pair_ops += per_point * self.scale;
        }
        CostTerms {
            pair_ops,
            structural_ops: 2.0 * n_est,
        }
    }
}

/// `P(Pois(λ) <= k)` by direct summation (exact for the small `k` of
/// outlier parameters; underflows to 0 for large `λ`, which is the
/// correct limit).
fn poisson_cdf(k: usize, lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    if !lambda.is_finite() {
        return 0.0; // infinite density: the CDF mass is at infinity
    }
    let mut term = (-lambda).exp();
    let mut acc = term;
    for i in 1..=k {
        term *= lambda / i as f64;
        acc += term;
    }
    acc.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_core::GridSpec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn params(r: f64, k: usize) -> OutlierParams {
        OutlierParams::new(r, k).unwrap()
    }

    /// Dense blob + sparse background over a 40x40 domain.
    fn skewed_sample(seed: u64) -> (PointSet, Rect) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = PointSet::new(2).unwrap();
        for _ in 0..4000 {
            s.push(&[rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)])
                .unwrap();
        }
        for _ in 0..500 {
            s.push(&[rng.gen_range(4.0..40.0), rng.gen_range(0.0..40.0)])
                .unwrap();
        }
        (s, Rect::new(vec![0.0, 0.0], vec![40.0, 40.0]).unwrap())
    }

    #[test]
    fn estimates_cover_every_partition_and_candidate() {
        let (sample, domain) = skewed_sample(1);
        let est = LocalCostEstimator::new(&domain, &sample, 1.0, params(1.0, 4), 32);
        let plan = PartitionPlan::from_grid(GridSpec::uniform(domain, 4).unwrap());
        let out = est.estimate(
            &plan,
            &sample,
            &[AlgorithmKind::NestedLoop, AlgorithmKind::CellBased],
        );
        assert_eq!(out.len(), 16);
        let total: f64 = out.iter().map(|e| e.n_est).sum();
        assert_eq!(total, 4500.0);
        for e in &out {
            assert_eq!(e.costs.len(), 2);
            assert!(e.costs.iter().all(|(_, c)| c.is_finite() && *c >= 0.0));
        }
    }

    #[test]
    fn dense_partition_cheaper_than_sparse_for_nested_loop() {
        let (sample, domain) = skewed_sample(2);
        let est = LocalCostEstimator::new(&domain, &sample, 1.0, params(1.0, 4), 32);
        let plan = PartitionPlan::from_grid(GridSpec::uniform(domain, 4).unwrap());
        let out = est.estimate(&plan, &sample, &[AlgorithmKind::NestedLoop]);
        // Partition containing the dense blob (cell 0) vs a moderate
        // background partition: per-POINT cost must be far lower in the
        // blob.
        let blob = &out[plan.locate(&[2.0, 2.0]) as usize];
        let bg = &out[plan.locate(&[25.0, 25.0]) as usize];
        let blob_per_point = blob.costs[0].1 / blob.n_est.max(1.0);
        let bg_per_point = bg.costs[0].1 / bg.n_est.max(1.0);
        assert!(
            blob_per_point < bg_per_point,
            "blob {blob_per_point} vs background {bg_per_point}"
        );
    }

    #[test]
    fn cell_based_prunes_dense_blob() {
        let (sample, domain) = skewed_sample(3);
        let est = LocalCostEstimator::new(&domain, &sample, 1.0, params(1.0, 4), 32);
        let plan = PartitionPlan::from_grid(GridSpec::uniform(domain, 4).unwrap());
        let out = est.estimate(&plan, &sample, &[AlgorithmKind::CellBased]);
        let blob = &out[plan.locate(&[2.0, 2.0]) as usize];
        // The blob (density 250/u², inlier-prunable at r=1) costs ~2 ops
        // per point plus overhead.
        assert!(
            blob.costs[0].1 <= PARTITION_OVERHEAD_OPS + 3.0 * blob.n_est,
            "blob CB cost {} too high",
            blob.costs[0].1
        );
    }

    #[test]
    fn empty_partition_costs_only_overhead() {
        // Background starts at x=5 — aligned with the 8x8 grid's 5-wide
        // cells — so the top-left corner cell [0,5)x[35,40) is empty by
        // construction, not merely with high probability.
        let mut rng = StdRng::seed_from_u64(4);
        let mut sample = PointSet::new(2).unwrap();
        for _ in 0..4000 {
            sample
                .push(&[rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)])
                .unwrap();
        }
        for _ in 0..500 {
            sample
                .push(&[rng.gen_range(5.0..40.0), rng.gen_range(0.0..40.0)])
                .unwrap();
        }
        let domain = Rect::new(vec![0.0, 0.0], vec![40.0, 40.0]).unwrap();
        let est = LocalCostEstimator::new(&domain, &sample, 1.0, params(1.0, 4), 32);
        let plan = PartitionPlan::from_grid(GridSpec::uniform(domain.clone(), 8).unwrap());
        let out = est.estimate(
            &plan,
            &sample,
            &[AlgorithmKind::NestedLoop, AlgorithmKind::CellBased],
        );
        let empty = &out[plan.locate(&[0.5, 39.5]) as usize];
        assert_eq!(empty.n_est, 0.0);
        for (_, c) in &empty.costs {
            assert_eq!(*c, PARTITION_OVERHEAD_OPS);
        }
    }

    #[test]
    fn sampling_rate_scales_estimates() {
        let (sample, domain) = skewed_sample(5);
        // Pretend the sample is a 10% draw: n_est should scale 10x.
        let est = LocalCostEstimator::new(&domain, &sample, 0.1, params(1.0, 4), 32);
        let plan = PartitionPlan::from_grid(GridSpec::uniform(domain, 2).unwrap());
        let out = est.estimate(&plan, &sample, &[AlgorithmKind::NestedLoop]);
        let total: f64 = out.iter().map(|e| e.n_est).sum();
        assert!((total - 45_000.0).abs() < 1e-6);
    }

    #[test]
    fn poisson_cdf_values() {
        // P(Pois(0) <= k) = 1 for any k.
        assert_eq!(poisson_cdf(0, 0.0), 1.0);
        // P(Pois(1) <= 0) = e^-1.
        assert!((poisson_cdf(0, 1.0) - (-1.0f64).exp()).abs() < 1e-12);
        // P(Pois(2) <= 1) = e^-2 (1 + 2).
        assert!((poisson_cdf(1, 2.0) - 3.0 * (-2.0f64).exp()).abs() < 1e-12);
        // Large lambda underflows to ~0.
        assert!(poisson_cdf(3, 1e4) < 1e-100);
        // Infinite lambda (degenerate zero-volume buckets) is 0, not NaN.
        assert_eq!(poisson_cdf(3, f64::INFINITY), 0.0);
        // Monotone in k.
        assert!(poisson_cdf(5, 3.0) > poisson_cdf(2, 3.0));
    }

    #[test]
    fn pruning_probability_shape() {
        let (sample, domain) = skewed_sample(8);
        let est = LocalCostEstimator::new(&domain, &sample, 1.0, params(2.0, 4), 32);
        // Extremes prune with near-certainty; the middle survives.
        let p_sparse = est.unpruned_probability(1e-6, 2.0);
        let p_dense = est.unpruned_probability(1e6, 2.0);
        let p_mid = est.unpruned_probability(1.0, 2.0);
        assert!(p_sparse < 0.01, "sparse {p_sparse}");
        assert!(p_dense < 0.01, "dense {p_dense}");
        assert!(p_mid > 0.3, "middle {p_mid}");
    }

    #[test]
    fn degenerate_all_identical_points_stay_finite() {
        // All points coincide: every bucket is zero-volume, densities are
        // infinite — costs must stay finite so packing can work.
        let mut sample = PointSet::new(2).unwrap();
        for _ in 0..50 {
            sample.push(&[5.0, 5.0]).unwrap();
        }
        let domain = Rect::new(vec![5.0, 5.0], vec![5.0, 5.0]).unwrap();
        let est = LocalCostEstimator::new(&domain, &sample, 1.0, params(1.0, 4), 32);
        let plan = PartitionPlan::from_grid(GridSpec::uniform(domain, 1).unwrap());
        let out = est.estimate(
            &plan,
            &sample,
            &[
                AlgorithmKind::NestedLoop,
                AlgorithmKind::CellBased,
                AlgorithmKind::CellBasedFullScan,
            ],
        );
        for e in &out {
            for (kind, c) in &e.costs {
                assert!(c.is_finite(), "{kind:?} cost {c}");
            }
        }
    }

    #[test]
    fn best_and_cost_of() {
        let e = PartitionEstimate {
            n_est: 10.0,
            hit_mu: 0.5,
            costs: vec![
                (AlgorithmKind::NestedLoop, 5.0),
                (AlgorithmKind::CellBased, 3.0),
            ],
            terms: vec![CostTerms::default(); 2],
        };
        assert_eq!(e.best(), (AlgorithmKind::CellBased, 3.0));
        assert_eq!(e.cost_of(AlgorithmKind::NestedLoop), 5.0);
        assert_eq!(e.cost_of(AlgorithmKind::PivotBased), 3.0);
    }

    #[test]
    fn unit_weights_leave_estimates_bit_identical() {
        let (sample, domain) = skewed_sample(6);
        let base = LocalCostEstimator::new(&domain, &sample, 1.0, params(1.0, 4), 32);
        let weighted = base.clone().with_weights(CostWeights::UNIT);
        let plan = PartitionPlan::from_grid(GridSpec::uniform(domain, 4).unwrap());
        let candidates = [
            AlgorithmKind::NestedLoop,
            AlgorithmKind::CellBased,
            AlgorithmKind::CellBasedFullScan,
        ];
        let a = base.estimate(&plan, &sample, &candidates);
        let b = weighted.estimate(&plan, &sample, &candidates);
        for (ea, eb) in a.iter().zip(&b) {
            for ((_, ca), (_, cb)) in ea.costs.iter().zip(&eb.costs) {
                assert_eq!(ca, cb);
            }
        }
    }

    #[test]
    fn structural_weight_raises_cell_based_relative_to_nested_loop() {
        let (sample, domain) = skewed_sample(9);
        let unit = LocalCostEstimator::new(&domain, &sample, 1.0, params(1.0, 4), 32);
        let cal = unit.clone().with_weights(CostWeights {
            pair: 1.0,
            structural: 8.0,
        });
        let plan = PartitionPlan::from_grid(GridSpec::uniform(domain, 4).unwrap());
        let blob_pid = plan.locate(&[2.0, 2.0]) as usize;
        let candidates = [AlgorithmKind::CellBased, AlgorithmKind::NestedLoop];
        let u = &unit.estimate(&plan, &sample, &candidates)[blob_pid];
        let c = &cal.estimate(&plan, &sample, &candidates)[blob_pid];
        // NL is pure pair ops: unchanged. CB carries the structural
        // indexing term: strictly more expensive under the profile.
        assert_eq!(
            u.cost_of(AlgorithmKind::NestedLoop),
            c.cost_of(AlgorithmKind::NestedLoop)
        );
        assert!(c.cost_of(AlgorithmKind::CellBased) > u.cost_of(AlgorithmKind::CellBased));
    }

    #[test]
    fn kernel_density_stays_close_to_bucket_density_on_uniform_data() {
        // On uniform data the bucket histogram is already accurate, so
        // the measured-λ refinement must land in the same cost regime
        // (same winner, costs within 2x) — it sharpens, not distorts.
        let mut rng = StdRng::seed_from_u64(12);
        let mut sample = PointSet::new(2).unwrap();
        for _ in 0..2000 {
            sample
                .push(&[rng.gen_range(0.0..20.0), rng.gen_range(0.0..20.0)])
                .unwrap();
        }
        let domain = Rect::new(vec![0.0, 0.0], vec![20.0, 20.0]).unwrap();
        let bucket = LocalCostEstimator::new(&domain, &sample, 1.0, params(1.0, 8), 32);
        let kernel = bucket.clone().with_kernel_density(&sample);
        let plan = PartitionPlan::from_grid(GridSpec::uniform(domain, 2).unwrap());
        let candidates = [AlgorithmKind::NestedLoop, AlgorithmKind::CellBased];
        let b = bucket.estimate(&plan, &sample, &candidates);
        let k = kernel.estimate(&plan, &sample, &candidates);
        for (eb, ek) in b.iter().zip(&k) {
            for ((kind, cb), (_, ck)) in eb.costs.iter().zip(&ek.costs) {
                assert!(
                    *ck <= 2.0 * cb && *cb <= 2.0 * ck,
                    "{kind:?}: bucket {cb} vs kernel {ck}"
                );
            }
            assert_eq!(eb.best().0, ek.best().0);
        }
    }

    #[test]
    fn kernel_density_handles_degenerate_identical_points() {
        let mut sample = PointSet::new(2).unwrap();
        for _ in 0..50 {
            sample.push(&[5.0, 5.0]).unwrap();
        }
        let domain = Rect::new(vec![5.0, 5.0], vec![5.0, 5.0]).unwrap();
        let est = LocalCostEstimator::new(&domain, &sample, 1.0, params(1.0, 4), 32)
            .with_kernel_density(&sample);
        let plan = PartitionPlan::from_grid(GridSpec::uniform(domain, 1).unwrap());
        let out = est.estimate(
            &plan,
            &sample,
            &[AlgorithmKind::NestedLoop, AlgorithmKind::CellBased],
        );
        for e in &out {
            for (kind, c) in &e.costs {
                assert!(c.is_finite(), "{kind:?} cost {c}");
            }
        }
    }
}

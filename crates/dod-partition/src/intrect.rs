//! Integer rectangles in mini-bucket index space.
//!
//! DSHC clusters are unions of mini buckets, and the merging criteria of
//! Definition 5.3 ("two clusters can form a rectangular shape iff their
//! bounds coincide in d−1 dimensions and touch in the remaining one") need
//! exact coordinate comparisons. Operating on integer bucket indices makes
//! those comparisons exact; the conversion back to real coordinates happens
//! once, when the final partition plan is emitted.

/// An axis-aligned box of mini-bucket indices; bounds are inclusive.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IntRect {
    lo: Vec<u32>,
    hi: Vec<u32>,
}

impl IntRect {
    /// Creates a box from inclusive per-dimension bounds.
    ///
    /// # Panics
    /// Panics if the vectors differ in length, are empty, or `lo[i] >
    /// hi[i]` for some `i`.
    pub fn new(lo: Vec<u32>, hi: Vec<u32>) -> Self {
        assert_eq!(lo.len(), hi.len(), "bound length mismatch");
        assert!(!lo.is_empty(), "empty bounds");
        for i in 0..lo.len() {
            assert!(lo[i] <= hi[i], "lo > hi in dimension {i}");
        }
        IntRect { lo, hi }
    }

    /// The unit box covering a single bucket index.
    pub fn unit(idx: &[u32]) -> Self {
        IntRect {
            lo: idx.to_vec(),
            hi: idx.to_vec(),
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Inclusive lower bounds.
    pub fn lo(&self) -> &[u32] {
        &self.lo
    }

    /// Inclusive upper bounds.
    pub fn hi(&self) -> &[u32] {
        &self.hi
    }

    /// Number of buckets covered (product of per-dimension spans).
    pub fn cells(&self) -> u64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| (h - l + 1) as u64)
            .product()
    }

    /// Whether the boxes overlap (inclusive).
    pub fn intersects(&self, other: &IntRect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        (0..self.dim()).all(|i| self.lo[i] <= other.hi[i] && other.lo[i] <= self.hi[i])
    }

    /// Whether the boxes share a (d−1)-dimensional face: disjoint but with
    /// adjacent index ranges in exactly one dimension, overlapping ranges
    /// in every other.
    pub fn is_adjacent(&self, other: &IntRect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        let mut touching = 0;
        for i in 0..self.dim() {
            let overlap = self.lo[i] <= other.hi[i] && other.lo[i] <= self.hi[i];
            if overlap {
                continue;
            }
            // Adjacent iff one range ends exactly where the other begins.
            let touch = self.hi[i] + 1 == other.lo[i] || other.hi[i] + 1 == self.lo[i];
            if !touch {
                return false;
            }
            touching += 1;
            if touching > 1 {
                return false;
            }
        }
        touching == 1
    }

    /// Definition 5.3: whether the union of the two boxes is itself a box:
    /// bounds equal in d−1 dimensions, and touching (adjacent) in the
    /// remaining one.
    pub fn union_is_rectangular(&self, other: &IntRect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        let mut merge_dim: Option<usize> = None;
        for i in 0..self.dim() {
            if self.lo[i] == other.lo[i] && self.hi[i] == other.hi[i] {
                continue;
            }
            if merge_dim.is_some() {
                return false; // differs in more than one dimension
            }
            let touch = self.hi[i] + 1 == other.lo[i] || other.hi[i] + 1 == self.lo[i];
            if !touch {
                return false;
            }
            merge_dim = Some(i);
        }
        merge_dim.is_some()
    }

    /// The bounding box of both inputs.
    pub fn union(&self, other: &IntRect) -> IntRect {
        debug_assert_eq!(self.dim(), other.dim());
        IntRect {
            lo: self
                .lo
                .iter()
                .zip(&other.lo)
                .map(|(a, b)| *a.min(b))
                .collect(),
            hi: self
                .hi
                .iter()
                .zip(&other.hi)
                .map(|(a, b)| *a.max(b))
                .collect(),
        }
    }

    /// By how many cells the bounding box would grow if extended to cover
    /// `other` (R-tree least-enlargement heuristic).
    pub fn enlargement(&self, other: &IntRect) -> u64 {
        self.union(other).cells() - self.cells()
    }

    /// Expands the box by one bucket in every direction, clamped at zero
    /// and at `limits` (exclusive per-dimension bucket counts). Used to
    /// search for adjacent entries in the AF-tree.
    pub fn grown_by_one(&self, limits: &[u32]) -> IntRect {
        IntRect {
            lo: self.lo.iter().map(|l| l.saturating_sub(1)).collect(),
            hi: self
                .hi
                .iter()
                .zip(limits)
                .map(|(h, lim)| (*h + 1).min(lim.saturating_sub(1)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: [u32; 2], hi: [u32; 2]) -> IntRect {
        IntRect::new(lo.to_vec(), hi.to_vec())
    }

    #[test]
    fn unit_box() {
        let u = IntRect::unit(&[3, 4]);
        assert_eq!(u.cells(), 1);
        assert_eq!(u.lo(), &[3, 4]);
        assert_eq!(u.hi(), &[3, 4]);
    }

    #[test]
    #[should_panic]
    fn inverted_bounds_panic() {
        IntRect::new(vec![2], vec![1]);
    }

    #[test]
    fn cells_product() {
        assert_eq!(b([0, 0], [3, 1]).cells(), 8);
    }

    #[test]
    fn intersects_inclusive() {
        assert!(b([0, 0], [2, 2]).intersects(&b([2, 2], [4, 4])));
        assert!(!b([0, 0], [2, 2]).intersects(&b([3, 0], [4, 2])));
    }

    #[test]
    fn adjacency_requires_touching_one_dim() {
        // side by side in x, same y-range
        assert!(b([0, 0], [1, 1]).is_adjacent(&b([2, 0], [3, 1])));
        // gap of one bucket
        assert!(!b([0, 0], [1, 1]).is_adjacent(&b([3, 0], [4, 1])));
        // diagonal corner touch: adjacent-in-two-dims -> not adjacent
        assert!(!b([0, 0], [1, 1]).is_adjacent(&b([2, 2], [3, 3])));
        // overlapping -> not adjacent
        assert!(!b([0, 0], [2, 2]).is_adjacent(&b([1, 0], [3, 2])));
    }

    #[test]
    fn rectangular_union_same_extent() {
        // Equal y-range, touching in x: union is a box.
        assert!(b([0, 0], [1, 3]).union_is_rectangular(&b([2, 0], [3, 3])));
        // Equal y-range but x-gap: no.
        assert!(!b([0, 0], [1, 3]).union_is_rectangular(&b([3, 0], [4, 3])));
        // Different y-extents: no.
        assert!(!b([0, 0], [1, 3]).union_is_rectangular(&b([2, 0], [3, 2])));
        // Identical boxes: no merge dimension -> not rectangular (would be
        // a duplicate, not a union).
        assert!(!b([0, 0], [1, 1]).union_is_rectangular(&b([0, 0], [1, 1])));
    }

    #[test]
    fn rectangular_union_symmetry() {
        let a = b([2, 0], [3, 3]);
        let c = b([0, 0], [1, 3]);
        assert_eq!(a.union_is_rectangular(&c), c.union_is_rectangular(&a));
    }

    #[test]
    fn union_bounds() {
        let u = b([0, 2], [1, 3]).union(&b([3, 0], [4, 1]));
        assert_eq!(u.lo(), &[0, 0]);
        assert_eq!(u.hi(), &[4, 3]);
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let big = b([0, 0], [9, 9]);
        assert_eq!(big.enlargement(&b([1, 1], [2, 2])), 0);
        assert!(big.enlargement(&b([0, 0], [10, 9])) > 0);
    }

    #[test]
    fn grown_by_one_clamps() {
        let g = b([0, 5], [2, 7]).grown_by_one(&[8, 8]);
        assert_eq!(g.lo(), &[0, 4]);
        assert_eq!(g.hi(), &[3, 7]);
    }

    #[test]
    fn three_dimensional_rectangular_union() {
        let a = IntRect::new(vec![0, 0, 0], vec![1, 1, 1]);
        let c = IntRect::new(vec![0, 0, 2], vec![1, 1, 3]);
        assert!(a.union_is_rectangular(&c));
        let d = IntRect::new(vec![0, 0, 2], vec![1, 2, 3]);
        assert!(!a.union_is_rectangular(&d));
    }
}

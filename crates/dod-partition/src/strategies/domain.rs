//! The Domain baseline: grid partitioning **without** supporting areas
//! (Section VI-A).
//!
//! "The default domain-based partitioning without supporting area Domain
//! ... needs an additional MapReduce job to confirm the outlier status of
//! a point p if p is at the edge of a partition and is classified as an
//! outlier in the first MapReduce job." The plan itself is identical to
//! uniSpace's grid; the difference — no support replication, plus the
//! second verification job — is enacted by the pipeline in the `dod`
//! crate, keyed off [`PartitionStrategy::uses_support_area`].

use crate::plan::{PartitionPlan, PlanContext};
use crate::strategies::{PartitionStrategy, UniSpace};
use dod_core::{PointSet, Rect};

/// Domain-based grid partitioning without supporting areas.
#[derive(Debug, Clone, Copy, Default)]
pub struct Domain;

impl PartitionStrategy for Domain {
    fn name(&self) -> &'static str {
        "Domain"
    }

    fn build_plan(&self, sample: &PointSet, domain: &Rect, ctx: &PlanContext) -> PartitionPlan {
        UniSpace.build_plan(sample, domain, ctx)
    }

    fn uses_support_area(&self) -> bool {
        false
    }

    fn default_allocation(&self) -> crate::packing::AllocationSpec {
        crate::packing::AllocationSpec::round_robin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_core::OutlierParams;

    #[test]
    fn same_grid_as_unispace_but_no_support() {
        let domain = Rect::new(vec![0.0, 0.0], vec![4.0, 4.0]).unwrap();
        let ctx = PlanContext::new(OutlierParams::new(1.0, 3).unwrap(), 4, 0.01);
        let sample = PointSet::new(2).unwrap();
        let d = Domain.build_plan(&sample, &domain, &ctx);
        let u = UniSpace.build_plan(&sample, &domain, &ctx);
        assert_eq!(d.num_partitions(), u.num_partitions());
        assert!(!Domain.uses_support_area());
        assert_eq!(Domain.name(), "Domain");
    }
}

//! The DDriven strategy: data-driven, cardinality-balanced partitioning
//! (Section VI-A).
//!
//! "The data-driven partitioning DDriven divides the dataset into
//! partitions with similar number of data points" — the traditional
//! load-balancing assumption the paper overturns. Implemented as
//! recursive sample-median splits prioritized by partition cardinality.

use crate::plan::{PartitionPlan, PlanContext};
use crate::strategies::{splitter, PartitionStrategy};
use dod_core::{PointSet, Rect};

/// Cardinality-balanced recursive partitioning.
#[derive(Debug, Clone, Copy, Default)]
pub struct DDriven;

impl PartitionStrategy for DDriven {
    fn name(&self) -> &'static str {
        "DDriven"
    }

    fn build_plan(&self, sample: &PointSet, domain: &Rect, ctx: &PlanContext) -> PartitionPlan {
        splitter::recursive_split(sample, domain, ctx.target_partitions, &|idxs, _| {
            idxs.len() as f64
        })
    }

    fn default_allocation(&self) -> crate::packing::AllocationSpec {
        crate::packing::AllocationSpec::cardinality()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_core::OutlierParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn skewed_data_gets_balanced_counts() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut sample = PointSet::new(2).unwrap();
        // 90% of the mass in the lower-left 10% of the domain.
        for _ in 0..900 {
            sample
                .push(&[rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
                .unwrap();
        }
        for _ in 0..100 {
            sample
                .push(&[rng.gen_range(1.0..10.0), rng.gen_range(1.0..10.0)])
                .unwrap();
        }
        let domain = Rect::new(vec![0.0, 0.0], vec![10.0, 10.0]).unwrap();
        let ctx = PlanContext::new(OutlierParams::new(1.0, 3).unwrap(), 8, 1.0);
        let plan = DDriven.build_plan(&sample, &domain, &ctx);
        assert_eq!(plan.num_partitions(), 8);
        let counts = plan.count_sample(&sample);
        let max = *counts.iter().max().unwrap();
        let min = counts
            .iter()
            .filter(|&&c| c > 0)
            .min()
            .copied()
            .unwrap_or(0);
        assert!(max <= 300, "max {max}");
        assert!(max <= min * 10, "imbalance: max {max}, min {min}");
    }

    #[test]
    fn uses_support_area() {
        assert!(DDriven.uses_support_area());
    }
}

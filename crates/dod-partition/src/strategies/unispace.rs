//! The uniSpace strategy: uniform domain-space grid partitioning with
//! supporting areas (Section III-A / VI-A).

use crate::plan::{PartitionPlan, PlanContext};
use crate::strategies::PartitionStrategy;
use dod_core::{GridSpec, PointSet, Rect};

/// Equi-width grid partitioning: every partition covers the same area
/// regardless of how many points fall into it.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniSpace;

impl UniSpace {
    /// Number of grid cells per dimension needed to reach `target`
    /// partitions in `dim` dimensions.
    pub fn cells_per_dim(target: usize, dim: usize) -> usize {
        ((target.max(1) as f64).powf(1.0 / dim as f64).round() as usize).max(1)
    }
}

impl PartitionStrategy for UniSpace {
    fn name(&self) -> &'static str {
        "uniSpace"
    }

    fn build_plan(&self, _sample: &PointSet, domain: &Rect, ctx: &PlanContext) -> PartitionPlan {
        let per_dim = Self::cells_per_dim(ctx.target_partitions, domain.dim());
        let counts: Vec<usize> = (0..domain.dim())
            .map(|i| if domain.extent(i) == 0.0 { 1 } else { per_dim })
            .collect();
        let grid = GridSpec::new(domain.clone(), counts).expect("valid grid");
        PartitionPlan::from_grid(grid)
    }

    fn default_allocation(&self) -> crate::packing::AllocationSpec {
        crate::packing::AllocationSpec::round_robin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_core::OutlierParams;

    #[test]
    fn cells_per_dim_square_root() {
        assert_eq!(UniSpace::cells_per_dim(16, 2), 4);
        assert_eq!(UniSpace::cells_per_dim(27, 3), 3);
        assert_eq!(UniSpace::cells_per_dim(1, 2), 1);
        assert_eq!(UniSpace::cells_per_dim(0, 2), 1);
    }

    #[test]
    fn builds_equal_area_partitions() {
        let domain = Rect::new(vec![0.0, 0.0], vec![8.0, 8.0]).unwrap();
        let ctx = PlanContext::new(OutlierParams::new(1.0, 3).unwrap(), 16, 0.01);
        let plan = UniSpace.build_plan(&PointSet::new(2).unwrap(), &domain, &ctx);
        assert_eq!(plan.num_partitions(), 16);
        for i in 0..16 {
            assert!((plan.rect(i).volume() - 4.0).abs() < 1e-12);
        }
        assert!(UniSpace.uses_support_area());
    }

    #[test]
    fn degenerate_dimension_collapses() {
        let domain = Rect::new(vec![0.0, 0.0], vec![8.0, 0.0]).unwrap();
        let ctx = PlanContext::new(OutlierParams::new(1.0, 3).unwrap(), 16, 0.01);
        let plan = UniSpace.build_plan(&PointSet::new(2).unwrap(), &domain, &ctx);
        assert_eq!(plan.num_partitions(), 4);
    }
}

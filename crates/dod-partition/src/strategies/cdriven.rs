//! The CDriven strategy: cost-driven partitioning (Section VI-A).
//!
//! "The cost-driven partitioning CDriven divides the dataset into
//! partitions with similar workload. The workload of each partition is
//! estimated utilizing our cost model (Sec. IV) with respect to the
//! selected detection algorithm." Implemented as recursive sample-median
//! splits prioritized by the Section IV cost of the detector the plan is
//! built for.

use crate::estimate::LocalCostEstimator;
use crate::plan::{PartitionPlan, PlanContext};
use crate::strategies::{splitter, PartitionStrategy};
use dod_core::{PointSet, Rect};
use dod_detect::cost::AlgorithmKind;

/// Cost-balanced recursive partitioning for a fixed detection algorithm.
#[derive(Debug, Clone, Copy)]
pub struct CDriven {
    kind: AlgorithmKind,
}

impl CDriven {
    /// Creates a cost-driven strategy balancing the cost model of `kind`.
    pub fn new(kind: AlgorithmKind) -> Self {
        CDriven { kind }
    }

    /// The detection algorithm whose cost model drives the splits.
    pub fn kind(&self) -> AlgorithmKind {
        self.kind
    }
}

impl Default for CDriven {
    fn default() -> Self {
        CDriven {
            kind: AlgorithmKind::NestedLoop,
        }
    }
}

impl PartitionStrategy for CDriven {
    fn name(&self) -> &'static str {
        "CDriven"
    }

    fn build_plan(&self, sample: &PointSet, domain: &Rect, ctx: &PlanContext) -> PartitionPlan {
        let kind = self.kind;
        let estimator = LocalCostEstimator::new(domain, sample, ctx.sample_rate, ctx.params, 32);
        splitter::recursive_split(sample, domain, ctx.target_partitions, &move |idxs, rect| {
            estimator.subset_cost(sample, idxs, kind, rect.volume())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packing::assignment_makespan;
    use dod_core::OutlierParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Mixed-density sample: a dense blob plus a sparse background.
    fn skewed_sample(seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = PointSet::new(2).unwrap();
        for _ in 0..800 {
            s.push(&[rng.gen_range(0.0..2.0), rng.gen_range(0.0..2.0)])
                .unwrap();
        }
        for _ in 0..200 {
            s.push(&[rng.gen_range(2.0..20.0), rng.gen_range(0.0..20.0)])
                .unwrap();
        }
        s
    }

    #[test]
    fn balances_cost_not_cardinality() {
        let sample = skewed_sample(3);
        let domain = Rect::new(vec![0.0, 0.0], vec![20.0, 20.0]).unwrap();
        let params = OutlierParams::new(0.5, 4).unwrap();
        let ctx = PlanContext::new(params, 16, 1.0);
        let plan = CDriven::new(AlgorithmKind::NestedLoop).build_plan(&sample, &domain, &ctx);
        assert_eq!(plan.num_partitions(), 16);

        // Evaluate predicted cost balance of CDriven vs DDriven under the
        // same estimator CDriven optimizes.
        let estimator = LocalCostEstimator::new(&domain, &sample, 1.0, params, 32);
        let cost_of = |plan: &PartitionPlan| -> Vec<f64> {
            estimator
                .estimate(plan, &sample, &[AlgorithmKind::NestedLoop])
                .into_iter()
                .map(|e| e.costs[0].1)
                .collect()
        };
        let c_costs = cost_of(&plan);
        let d_plan = crate::strategies::DDriven.build_plan(&sample, &domain, &ctx);
        let d_costs = cost_of(&d_plan);
        // Same number of bins; the cost-driven plan's most expensive
        // partition must not exceed the data-driven plan's.
        let ident: Vec<usize> = (0..16).collect();
        let c_max = assignment_makespan(&c_costs, 16, &ident);
        let d_max = assignment_makespan(&d_costs, 16, &ident);
        assert!(
            c_max <= d_max * 1.05,
            "cost-driven max {c_max} should not exceed data-driven max {d_max}"
        );
    }

    #[test]
    fn default_is_nested_loop() {
        assert_eq!(CDriven::default().kind(), AlgorithmKind::NestedLoop);
        assert_eq!(CDriven::default().name(), "CDriven");
        assert!(CDriven::default().uses_support_area());
    }

    #[test]
    fn works_with_cell_based_model() {
        let sample = skewed_sample(5);
        let domain = Rect::new(vec![0.0, 0.0], vec![20.0, 20.0]).unwrap();
        let ctx = PlanContext::new(OutlierParams::new(0.5, 4).unwrap(), 8, 1.0);
        let plan = CDriven::new(AlgorithmKind::CellBased).build_plan(&sample, &domain, &ctx);
        assert!(plan.num_partitions() <= 8);
        assert!(plan.num_partitions() >= 1);
    }
}

//! The four partitioning strategies of the evaluation (Section VI-A):
//!
//! * [`Domain`] — grid partitioning **without** supporting areas; needs
//!   the two-job protocol (edge outliers re-checked in a second job);
//! * [`UniSpace`] — equi-width grid with supporting areas (Section III-A);
//! * [`DDriven`] — data-driven recursive splits balancing *cardinality*
//!   (the traditional load-balancing assumption);
//! * [`CDriven`] — cost-driven recursive splits balancing the *predicted
//!   detection cost* of Section IV's models (true load balancing).

mod cdriven;
mod ddriven;
mod dmt;
mod domain;
mod splitter;
mod unispace;

pub use cdriven::CDriven;
pub use ddriven::DDriven;
pub use dmt::Dmt;
pub use domain::Domain;
pub use unispace::UniSpace;

use crate::packing::AllocationSpec;
use crate::plan::{PartitionPlan, PlanContext};
use dod_core::{PointSet, Rect};

/// A map-side partitioning strategy: consumes the preprocessing sample and
/// produces the partition plan the mappers will apply.
pub trait PartitionStrategy {
    /// Name used in logs and benchmark output.
    fn name(&self) -> &'static str;

    /// Builds the partition plan.
    fn build_plan(&self, sample: &PointSet, domain: &Rect, ctx: &PlanContext) -> PartitionPlan;

    /// Whether the plan relies on supporting areas for single-job
    /// correctness. `false` only for the [`Domain`] baseline, which must
    /// run the second verification job.
    fn uses_support_area(&self) -> bool {
        true
    }

    /// The partition→reducer allocation philosophy this strategy pairs
    /// with in the paper's evaluation: hash round-robin for the Domain
    /// and uniSpace baselines, cardinality-balanced LPT for DDriven,
    /// cost-balanced LPT for CDriven and DMT (the default).
    fn default_allocation(&self) -> AllocationSpec {
        AllocationSpec::cost()
    }
}

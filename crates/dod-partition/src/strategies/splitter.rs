//! Shared recursive domain splitter used by the DDriven and CDriven
//! strategies.
//!
//! Starting from the whole domain, the region with the largest weight
//! (cardinality for DDriven, predicted detection cost for CDriven) is
//! repeatedly split at the sample median of its widest dimension, until
//! the target partition count is reached or no region can be split
//! further. The split decisions are recorded in a [`SplitTree`] so the
//! mappers can locate points in O(log m).

use crate::plan::{PartitionPlan, SplitNode, SplitTree};
use dod_core::{PointSet, Rect};

/// A region under construction.
struct Region {
    node: usize,
    rect: Rect,
    /// Indices into the sample.
    idxs: Vec<u32>,
    splittable: bool,
    /// Memoized `weight(idxs, rect)` — weight functions can be O(|idxs|).
    weight: f64,
}

/// Weight function: `(sample point indices, region_rect) -> priority`.
/// The region with the highest weight is split next.
pub type WeightFn<'a> = dyn Fn(&[u32], &Rect) -> f64 + 'a;

/// Recursively splits `domain` into at most `target` regions, balancing
/// `weight`.
pub fn recursive_split(
    sample: &PointSet,
    domain: &Rect,
    target: usize,
    weight: &WeightFn<'_>,
) -> PartitionPlan {
    let target = target.max(1);
    let mut nodes: Vec<SplitNode> = vec![SplitNode::Leaf(0)];
    let root_idxs: Vec<u32> = (0..sample.len() as u32).collect();
    let root_weight = weight(&root_idxs, domain);
    let mut regions: Vec<Region> = vec![Region {
        node: 0,
        rect: domain.clone(),
        idxs: root_idxs,
        splittable: true,
        weight: root_weight,
    }];

    while regions.len() < target {
        // Pick the splittable region with maximal (memoized) weight.
        let Some(best) = regions
            .iter()
            .enumerate()
            .filter(|(_, r)| r.splittable)
            .max_by(|(_, a), (_, b)| a.weight.partial_cmp(&b.weight).expect("finite weights"))
            .map(|(i, _)| i)
        else {
            break; // nothing left to split
        };

        match split_region(sample, &regions[best]) {
            Some((dim, at, left_idxs, right_idxs)) => {
                let region = regions.swap_remove(best);
                let (lrect, rrect) = region.rect.split_at(dim, at);
                let left_node = nodes.len();
                let right_node = nodes.len() + 1;
                nodes.push(SplitNode::Leaf(0));
                nodes.push(SplitNode::Leaf(0));
                nodes[region.node] = SplitNode::Split {
                    dim,
                    at,
                    left: left_node as u32,
                    right: right_node as u32,
                };
                let left_weight = weight(&left_idxs, &lrect);
                let right_weight = weight(&right_idxs, &rrect);
                regions.push(Region {
                    node: left_node,
                    rect: lrect,
                    idxs: left_idxs,
                    splittable: true,
                    weight: left_weight,
                });
                regions.push(Region {
                    node: right_node,
                    rect: rrect,
                    idxs: right_idxs,
                    splittable: true,
                    weight: right_weight,
                });
            }
            None => {
                regions[best].splittable = false;
            }
        }
    }

    // Assign partition ids in deterministic (node-index) order.
    regions.sort_by_key(|r| r.node);
    let mut rects = Vec::with_capacity(regions.len());
    for (pid, region) in regions.iter().enumerate() {
        nodes[region.node] = SplitNode::Leaf(pid as u32);
        rects.push(region.rect.clone());
    }
    PartitionPlan::from_split_tree(domain.clone(), SplitTree::new(nodes), rects)
}

/// Chooses a split for the region: sample median of the widest dimension,
/// falling back to the midpoint when the median would not separate the
/// region. Returns `None` when the region cannot be meaningfully split.
fn split_region(sample: &PointSet, region: &Region) -> Option<(usize, f64, Vec<u32>, Vec<u32>)> {
    let rect = &region.rect;
    let dim_count = rect.dim();
    // Try dimensions from widest to narrowest.
    let mut dims: Vec<usize> = (0..dim_count).collect();
    dims.sort_by(|&a, &b| rect.extent(b).partial_cmp(&rect.extent(a)).expect("finite"));
    for &dim in &dims {
        if rect.extent(dim) <= 0.0 {
            continue;
        }
        let at = split_coordinate(sample, &region.idxs, rect, dim)?;
        let mut left = Vec::new();
        let mut right = Vec::new();
        for &i in &region.idxs {
            if sample.point(i as usize)[dim] < at {
                left.push(i);
            } else {
                right.push(i);
            }
        }
        return Some((dim, at, left, right));
    }
    None
}

/// Median of the sample coordinates in `dim`, clamped strictly inside the
/// region; midpoint fallback for empty or degenerate samples.
fn split_coordinate(sample: &PointSet, idxs: &[u32], rect: &Rect, dim: usize) -> Option<f64> {
    let lo = rect.min()[dim];
    let hi = rect.max()[dim];
    if hi <= lo {
        return None;
    }
    let mid = 0.5 * (lo + hi);
    if idxs.len() < 2 {
        return Some(mid);
    }
    let mut coords: Vec<f64> = idxs
        .iter()
        .map(|&i| sample.point(i as usize)[dim])
        .collect();
    coords.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = coords[coords.len() / 2];
    if median > lo && median < hi {
        Some(median)
    } else {
        Some(mid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn domain() -> Rect {
        Rect::new(vec![0.0, 0.0], vec![10.0, 10.0]).unwrap()
    }

    fn uniform(n: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = PointSet::new(2).unwrap();
        for _ in 0..n {
            s.push(&[rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)])
                .unwrap();
        }
        s
    }

    #[test]
    fn reaches_target_partition_count() {
        let sample = uniform(1000, 1);
        let plan = recursive_split(&sample, &domain(), 8, &|idxs, _| idxs.len() as f64);
        assert_eq!(plan.num_partitions(), 8);
    }

    #[test]
    fn rects_tile_the_domain() {
        let sample = uniform(500, 2);
        let plan = recursive_split(&sample, &domain(), 13, &|idxs, _| idxs.len() as f64);
        let total: f64 = plan.rects().iter().map(Rect::volume).sum();
        assert!((total - 100.0).abs() < 1e-9);
        // Disjointness: pairwise intersection has zero volume.
        for i in 0..plan.num_partitions() {
            for j in i + 1..plan.num_partitions() {
                let a = plan.rect(i);
                let b = plan.rect(j);
                if a.intersects(b) {
                    // Touching faces are allowed; overlapping volume isn't.
                    let overlap: f64 = (0..2)
                        .map(|d| (a.max()[d].min(b.max()[d]) - a.min()[d].max(b.min()[d])).max(0.0))
                        .product();
                    assert!(overlap < 1e-9, "partitions {i} and {j} overlap");
                }
            }
        }
    }

    #[test]
    fn locate_agrees_with_rects() {
        let sample = uniform(800, 3);
        let plan = recursive_split(&sample, &domain(), 16, &|idxs, _| idxs.len() as f64);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = [rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)];
            let pid = plan.locate(&x) as usize;
            assert!(plan.rect(pid).contains_closed(&x));
        }
    }

    #[test]
    fn cardinality_weight_balances_counts() {
        // Heavily skewed data: most points in one corner.
        let mut s = PointSet::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..900 {
            s.push(&[rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
                .unwrap();
        }
        for _ in 0..100 {
            s.push(&[rng.gen_range(1.0..10.0), rng.gen_range(0.0..10.0)])
                .unwrap();
        }
        let plan = recursive_split(&s, &domain(), 10, &|idxs, _| idxs.len() as f64);
        let counts = plan.count_sample(&s);
        let max = *counts.iter().max().unwrap();
        // With equal-count splitting, no partition should hold more than
        // ~2x the average (1000/10 = 100).
        assert!(max <= 250, "max partition count {max}");
    }

    #[test]
    fn empty_sample_still_produces_plan() {
        let s = PointSet::new(2).unwrap();
        let plan = recursive_split(&s, &domain(), 4, &|idxs, _| idxs.len() as f64);
        assert_eq!(plan.num_partitions(), 4);
        assert_eq!(plan.locate(&[0.0, 0.0]), plan.locate(&[0.0, 0.0]));
    }

    #[test]
    fn target_one_returns_whole_domain() {
        let s = uniform(10, 5);
        let plan = recursive_split(&s, &domain(), 1, &|idxs, _| idxs.len() as f64);
        assert_eq!(plan.num_partitions(), 1);
        assert_eq!(plan.rect(0), &domain());
    }

    #[test]
    fn degenerate_domain_stops_splitting() {
        let dom = Rect::new(vec![0.0, 0.0], vec![0.0, 0.0]).unwrap();
        let mut s = PointSet::new(2).unwrap();
        s.push(&[0.0, 0.0]).unwrap();
        let plan = recursive_split(&s, &dom, 4, &|idxs, _| idxs.len() as f64);
        assert_eq!(plan.num_partitions(), 1);
    }

    #[test]
    fn duplicate_heavy_sample_terminates() {
        let mut s = PointSet::new(2).unwrap();
        for _ in 0..100 {
            s.push(&[5.0, 5.0]).unwrap();
        }
        let plan = recursive_split(&s, &domain(), 8, &|idxs, _| idxs.len() as f64);
        assert!(plan.num_partitions() <= 8);
        assert!(plan.num_partitions() >= 1);
    }
}

//! The DMT partitioning stage: density-aware multi-tactic plan generation
//! (Section V).
//!
//! Discretizes the domain into mini buckets, clusters them with DSHC, and
//! emits one partition per cluster. The companion algorithm/allocation
//! plans are produced by [`crate::plan::MultiTacticPlan::build`], which
//! the `dod` pipeline invokes with this plan.

use crate::dshc::{Dshc, DshcConfig};
use crate::minibucket::MiniBucketGrid;
use crate::plan::{PartitionPlan, PlanContext};
use crate::strategies::PartitionStrategy;
use dod_core::{PointSet, Rect};

/// Upper bound on the total number of mini buckets; the per-dimension
/// resolution is reduced in high dimensions so the bucket grid stays
/// tractable (`buckets_per_dim^d <= MAX_TOTAL_BUCKETS`).
pub const MAX_TOTAL_BUCKETS: usize = 65_536;

/// Density-aware multi-tactic partitioning (DSHC over mini buckets).
#[derive(Debug, Clone, Copy)]
pub struct Dmt {
    /// Mini buckets per dimension (Section V-A stage 1). Clamped so the
    /// total bucket count stays below `MAX_TOTAL_BUCKETS`.
    pub buckets_per_dim: usize,
    /// `Tdiff` as a fraction of the dataset's mean density
    /// (Definition 5.2, criterion 1).
    pub tdiff_factor: f64,
    /// `Tmax#` as a fraction of the dataset: no cluster may hold more
    /// than this share of the points (Definition 5.2, criterion 3 — the
    /// memory bound of one reducer, expressed relative to the input so
    /// the same configuration works at every scale). `1.0` disables the
    /// cap.
    pub max_fraction_per_partition: f64,
}

impl Dmt {
    /// Creates a DMT strategy with the given mini-bucket resolution.
    pub fn new(buckets_per_dim: usize) -> Self {
        Dmt {
            buckets_per_dim,
            ..Dmt::default()
        }
    }
}

impl Default for Dmt {
    fn default() -> Self {
        Dmt {
            buckets_per_dim: 32,
            tdiff_factor: 1.0,
            max_fraction_per_partition: 0.02,
        }
    }
}

impl PartitionStrategy for Dmt {
    fn name(&self) -> &'static str {
        "DMT"
    }

    fn build_plan(&self, sample: &PointSet, domain: &Rect, _ctx: &PlanContext) -> PartitionPlan {
        // Clamp the per-dimension resolution so buckets^d stays bounded.
        let dim = domain.dim() as f64;
        let cap = (MAX_TOTAL_BUCKETS as f64).powf(1.0 / dim).floor() as usize;
        let per_dim = self.buckets_per_dim.clamp(1, cap.max(1));
        let buckets = MiniBucketGrid::build(domain, per_dim, sample)
            .expect("sample and domain dimensions agree");
        // Floor of 32 sample points so tiny samples don't shatter the
        // plan into per-bucket partitions.
        let max_sample_points = if self.max_fraction_per_partition >= 1.0 {
            u64::MAX
        } else {
            ((sample.len() as f64) * self.max_fraction_per_partition)
                .ceil()
                .max(32.0) as u64
        };
        let config = DshcConfig {
            tree_fanout: 8,
            ..DshcConfig::relative(&buckets, self.tdiff_factor, max_sample_points)
        };
        let clusters = Dshc::cluster(&buckets, &config);
        PartitionPlan::from_clusters(&buckets, &clusters)
            .expect("DSHC clusters tile the bucket grid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_core::OutlierParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ctx() -> PlanContext {
        PlanContext::new(OutlierParams::new(0.5, 4).unwrap(), 16, 1.0)
    }

    #[test]
    fn plan_covers_domain_and_locates_points() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut sample = PointSet::new(2).unwrap();
        for _ in 0..500 {
            sample
                .push(&[rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)])
                .unwrap();
        }
        for _ in 0..50 {
            sample
                .push(&[rng.gen_range(4.0..16.0), rng.gen_range(0.0..16.0)])
                .unwrap();
        }
        let domain = Rect::new(vec![0.0, 0.0], vec![16.0, 16.0]).unwrap();
        let plan = Dmt::default().build_plan(&sample, &domain, &ctx());
        assert!(plan.num_partitions() >= 2);
        let counts = plan.count_sample(&sample);
        assert_eq!(counts.iter().sum::<u64>(), 550);
        for p in sample.iter() {
            let pid = plan.locate(p) as usize;
            assert!(plan.rect(pid).contains_closed(p));
        }
    }

    #[test]
    fn partitions_separate_density_regimes() {
        // Dense blob + empty space: the blob must not share a partition
        // with vast empty area.
        let mut sample = PointSet::new(2).unwrap();
        for i in 0..400 {
            sample
                .push(&[(i % 20) as f64 * 0.05, (i / 20) as f64 * 0.05])
                .unwrap();
        }
        let domain = Rect::new(vec![0.0, 0.0], vec![16.0, 16.0]).unwrap();
        let plan = Dmt::new(16).build_plan(&sample, &domain, &ctx());
        let counts = plan.count_sample(&sample);
        // The densest partition should be spatially small.
        let (densest, _) = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap();
        assert!(plan.rect(densest).volume() < domain.volume() / 4.0);
    }

    #[test]
    fn name_and_support() {
        assert_eq!(Dmt::default().name(), "DMT");
        assert!(Dmt::default().uses_support_area());
    }
}

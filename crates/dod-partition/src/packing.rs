//! Multi-bin packing for partition allocation (Section V-A, step 3).
//!
//! "This problem is equivalent to the problem of multi-bin packing, in
//! which a set of N numbers needs to be divided into K subsets, such that
//! the sums within each subset are as similar as possible. This problem is
//! known to be NP-Complete. ... In DOD, we adopt the polynomial-time
//! algorithm proposed in \[25\]." We implement the standard polynomial
//! scheme — Longest-Processing-Time-first list scheduling — plus a local
//! pairwise-improvement pass, and the naive policies the non-cost-aware
//! baselines use.

/// What quantity an allocation balances across reducers.
///
/// The paper's baselines balance *cardinality* (the "traditional load
/// balancing assumption" of Section IV-A); CDriven and DMT balance the
/// *predicted cost* of the Section IV models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalanceWeight {
    /// Balance estimated partition cardinalities.
    Cardinality,
    /// Balance predicted detection costs.
    Cost,
}

/// A full allocation specification: packing policy plus the quantity it
/// balances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocationSpec {
    /// The packing policy.
    pub policy: AllocationPolicy,
    /// The balanced quantity (ignored by [`AllocationPolicy::RoundRobin`]).
    pub weight: BalanceWeight,
}

impl AllocationSpec {
    /// Hash-style round-robin (the Domain / uniSpace baselines).
    pub fn round_robin() -> Self {
        AllocationSpec {
            policy: AllocationPolicy::RoundRobin,
            weight: BalanceWeight::Cardinality,
        }
    }

    /// Cardinality-balanced LPT (the DDriven baseline).
    pub fn cardinality() -> Self {
        AllocationSpec {
            policy: AllocationPolicy::LptRefined,
            weight: BalanceWeight::Cardinality,
        }
    }

    /// Cost-balanced LPT (CDriven and DMT).
    pub fn cost() -> Self {
        AllocationSpec {
            policy: AllocationPolicy::LptRefined,
            weight: BalanceWeight::Cost,
        }
    }
}

/// How partitions are assigned to reducers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationPolicy {
    /// Partition `i` goes to reducer `i mod K` — what a hash partitioner
    /// effectively does; used by the Domain and uniSpace baselines.
    RoundRobin,
    /// LPT greedy: heaviest partition first, always into the currently
    /// lightest bin.
    Lpt,
    /// LPT followed by pairwise move/swap refinement until no improvement.
    LptRefined,
}

/// Assigns each weighted item to one of `bins` bins under `policy`,
/// returning the bin index per item.
///
/// Weights must be non-negative and finite; `bins` of 0 is coerced to 1.
pub fn allocate(weights: &[f64], bins: usize, policy: AllocationPolicy) -> Vec<usize> {
    let bins = bins.max(1);
    match policy {
        AllocationPolicy::RoundRobin => (0..weights.len()).map(|i| i % bins).collect(),
        AllocationPolicy::Lpt => lpt(weights, bins),
        AllocationPolicy::LptRefined => {
            let mut assign = lpt(weights, bins);
            refine(weights, bins, &mut assign);
            assign
        }
    }
}

/// The resulting per-bin loads of an assignment.
pub fn bin_loads(weights: &[f64], bins: usize, assignment: &[usize]) -> Vec<f64> {
    let mut loads = vec![0.0; bins.max(1)];
    for (i, &b) in assignment.iter().enumerate() {
        loads[b] += weights[i];
    }
    loads
}

/// The makespan (maximum bin load) of an assignment.
pub fn assignment_makespan(weights: &[f64], bins: usize, assignment: &[usize]) -> f64 {
    bin_loads(weights, bins, assignment)
        .into_iter()
        .fold(0.0, f64::max)
}

fn lpt(weights: &[f64], bins: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        weights[b]
            .partial_cmp(&weights[a])
            .expect("finite weights")
            .then(a.cmp(&b))
    });
    let mut loads = vec![0.0f64; bins];
    let mut assign = vec![0usize; weights.len()];
    for &i in &order {
        let (bin, _) = loads
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite loads"))
            .expect("bins >= 1");
        assign[i] = bin;
        loads[bin] += weights[i];
    }
    assign
}

/// Local search: move single items from the heaviest bin, or swap a pair
/// between the heaviest bin and another bin, whenever it reduces the
/// makespan *meaningfully* (relative threshold — with float weights an
/// absolute epsilon admits astronomically long chains of microscopic
/// improvements). A hard iteration cap bounds the worst case.
fn refine(weights: &[f64], bins: usize, assign: &mut [usize]) {
    let max_rounds = 4 * assign.len().max(1);
    for _ in 0..max_rounds {
        let loads = bin_loads(weights, bins, assign);
        let (hot, &hot_load) = loads
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite"))
            .expect("bins >= 1");
        // Only accept improvements worth at least 0.1% of the current
        // makespan (or any improvement for small integral weights).
        let threshold = hot_load - (hot_load * 1e-3).max(1e-12);
        let mut improved = false;

        // Try moving one item off the hot bin.
        'outer: for i in 0..assign.len() {
            if assign[i] != hot {
                continue;
            }
            for (b, &load) in loads.iter().enumerate().take(bins) {
                if b == hot {
                    continue;
                }
                let new_src = hot_load - weights[i];
                let new_dst = load + weights[i];
                if new_src.max(new_dst) < threshold {
                    assign[i] = b;
                    improved = true;
                    break 'outer;
                }
            }
        }
        if improved {
            continue;
        }

        // Try swapping one hot item with a lighter item elsewhere.
        'swap: for i in 0..assign.len() {
            if assign[i] != hot {
                continue;
            }
            for j in 0..assign.len() {
                let b = assign[j];
                if b == hot || weights[j] >= weights[i] {
                    continue;
                }
                let delta = weights[i] - weights[j];
                let new_src = hot_load - delta;
                let new_dst = loads[b] + delta;
                if new_src.max(new_dst) < threshold {
                    assign.swap(i, j);
                    improved = true;
                    break 'swap;
                }
            }
        }
        if !improved {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_robin_cycles() {
        let a = allocate(&[1.0; 7], 3, AllocationPolicy::RoundRobin);
        assert_eq!(a, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn lpt_classic_example() {
        // Weights 7,6,5,4,3 on 2 bins: LPT gives {7,4,3}=14? No:
        // 7->b0, 6->b1, 5->b1? loads: 7 / 6 -> 5 to b1 (load 6<7)
        // -> b1=11, 4 -> b0 (7<11) -> 11, 3 -> b0 -> 14? b0=7+4=11, then 3
        // -> either (11,11) -> 14? Let's just assert optimality here: the
        // optimum is ceil(25/2)=13; LPT yields 14 or better.
        let w = [7.0, 6.0, 5.0, 4.0, 3.0];
        let a = allocate(&w, 2, AllocationPolicy::Lpt);
        let ms = assignment_makespan(&w, 2, &a);
        assert!(ms <= 14.0 + 1e-9);
        // LPT guarantee: <= (4/3 - 1/(3m)) OPT = (4/3 - 1/6)*13 ≈ 15.2
        assert!(ms >= 12.5);
    }

    #[test]
    fn refined_fixes_lpt_worst_case() {
        // Classic LPT-suboptimal instance: 3,3,2,2,2 on 2 bins.
        // LPT: 3->a, 3->b, 2->a, 2->b, 2->a/b -> makespan 7. Optimal 6.
        let w = [3.0, 3.0, 2.0, 2.0, 2.0];
        let lpt_ms = assignment_makespan(&w, 2, &allocate(&w, 2, AllocationPolicy::Lpt));
        let ref_ms = assignment_makespan(&w, 2, &allocate(&w, 2, AllocationPolicy::LptRefined));
        assert_eq!(lpt_ms, 7.0);
        assert_eq!(ref_ms, 6.0);
    }

    #[test]
    fn single_bin_gets_everything() {
        let w = [1.0, 2.0, 3.0];
        for policy in [
            AllocationPolicy::RoundRobin,
            AllocationPolicy::Lpt,
            AllocationPolicy::LptRefined,
        ] {
            let a = allocate(&w, 1, policy);
            assert!(a.iter().all(|&b| b == 0));
        }
    }

    #[test]
    fn zero_bins_coerced() {
        let a = allocate(&[1.0], 0, AllocationPolicy::Lpt);
        assert_eq!(a, vec![0]);
    }

    #[test]
    fn empty_weights() {
        assert!(allocate(&[], 4, AllocationPolicy::LptRefined).is_empty());
    }

    #[test]
    fn more_bins_than_items() {
        let w = [5.0, 1.0];
        let a = allocate(&w, 10, AllocationPolicy::Lpt);
        assert_ne!(a[0], a[1]);
        assert_eq!(assignment_makespan(&w, 10, &a), 5.0);
    }

    #[test]
    fn lpt_beats_round_robin_on_skewed_weights() {
        // Adversarial for round-robin: heavy items all land in bin 0.
        let mut w = Vec::new();
        for _ in 0..10 {
            w.push(100.0);
            w.push(1.0);
        }
        let rr = assignment_makespan(&w, 2, &allocate(&w, 2, AllocationPolicy::RoundRobin));
        let lpt = assignment_makespan(&w, 2, &allocate(&w, 2, AllocationPolicy::Lpt));
        assert_eq!(rr, 1000.0);
        assert!(lpt <= 505.0);
    }

    /// Exhaustive optimal makespan for tiny instances.
    fn brute_force_optimum(weights: &[f64], bins: usize) -> f64 {
        fn rec(weights: &[f64], i: usize, loads: &mut Vec<f64>, best: &mut f64) {
            if i == weights.len() {
                let ms = loads.iter().copied().fold(0.0, f64::max);
                if ms < *best {
                    *best = ms;
                }
                return;
            }
            for b in 0..loads.len() {
                loads[b] += weights[i];
                let ms_so_far = loads.iter().copied().fold(0.0, f64::max);
                if ms_so_far < *best {
                    rec(weights, i + 1, loads, best);
                }
                loads[b] -= weights[i];
            }
        }
        let mut best = f64::INFINITY;
        rec(weights, 0, &mut vec![0.0; bins], &mut best);
        best
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn lpt_within_four_thirds_of_optimum(
            weights in proptest::collection::vec(0.1f64..100.0, 1..9),
            bins in 1usize..4,
        ) {
            let opt = brute_force_optimum(&weights, bins);
            for policy in [AllocationPolicy::Lpt, AllocationPolicy::LptRefined] {
                let a = allocate(&weights, bins, policy);
                let ms = assignment_makespan(&weights, bins, &a);
                // LPT bound: (4/3 - 1/(3m)) * OPT.
                let bound = (4.0 / 3.0) * opt + 1e-9;
                prop_assert!(ms <= bound, "{policy:?}: {ms} > 4/3 * {opt}");
                prop_assert!(ms >= opt - 1e-9);
            }
        }

        #[test]
        fn every_item_assigned_to_valid_bin(
            weights in proptest::collection::vec(0.0f64..50.0, 0..40),
            bins in 1usize..8,
        ) {
            for policy in [
                AllocationPolicy::RoundRobin,
                AllocationPolicy::Lpt,
                AllocationPolicy::LptRefined,
            ] {
                let a = allocate(&weights, bins, policy);
                prop_assert_eq!(a.len(), weights.len());
                prop_assert!(a.iter().all(|&b| b < bins));
            }
        }
    }
}

//! Partition planning for distributed outlier detection.
//!
//! This crate implements the map-side half of the paper's contribution:
//!
//! * the four partitioning strategies of the evaluation (Section VI-A) —
//!   [`strategies::Domain`] (grid, no supporting area, two-job protocol),
//!   [`strategies::UniSpace`] (equi-width grid), [`strategies::DDriven`]
//!   (cardinality-balanced recursive splits) and [`strategies::CDriven`]
//!   (cost-balanced recursive splits driven by the Section IV models);
//! * the DMT preprocessing pipeline (Section V): random [`sample`]-ing,
//!   [`minibucket`] statistics, the [`af_tree`] (R-tree over Aggregate
//!   Features) and the [`dshc`] density-and-spatial-aware hierarchical
//!   clustering built on it;
//! * per-partition algorithm selection and cost estimation ([`plan`],
//!   [`estimate`]), and
//! * reducer allocation via multi-bin [`packing`] (Section V-A step 3).
//!
//! # Example: plan a skewed dataset
//!
//! ```
//! use dod_core::{OutlierParams, PointSet, Rect};
//! use dod_partition::{Dmt, PartitionStrategy, PlanContext};
//!
//! // A dense blob in one corner of a mostly-empty domain.
//! let pts: Vec<(f64, f64)> =
//!     (0..400).map(|i| ((i % 20) as f64 * 0.05, (i / 20) as f64 * 0.05)).collect();
//! let sample = PointSet::from_xy(&pts);
//! let domain = Rect::new(vec![0.0, 0.0], vec![16.0, 16.0]).unwrap();
//! let ctx = PlanContext::new(OutlierParams::new(0.5, 4).unwrap(), 16, 1.0);
//!
//! let plan = Dmt::default().build_plan(&sample, &domain, &ctx);
//! // DSHC separates the dense blob from the empty space.
//! assert!(plan.num_partitions() >= 2);
//! let blob = plan.locate(&[0.5, 0.5]);
//! let empty = plan.locate(&[15.0, 15.0]);
//! assert_ne!(blob, empty);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod af_tree;
pub mod dshc;
pub mod estimate;
pub mod intrect;
pub mod minibucket;
pub mod packing;
pub mod plan;
pub mod sample;
pub mod strategies;

pub use dshc::{Dshc, DshcConfig};
pub use estimate::{LocalCostEstimator, PartitionEstimate};
pub use intrect::IntRect;
pub use minibucket::MiniBucketGrid;
pub use packing::{allocate, AllocationPolicy, AllocationSpec, BalanceWeight};
pub use plan::{
    distribution_drift, CandidateCost, MultiTacticPlan, PartitionPlan, PartitionReport,
    PlanContext, PlanReport, Router, Routing,
};
pub use sample::sample_points;
pub use strategies::{CDriven, DDriven, Dmt, Domain, PartitionStrategy, UniSpace};

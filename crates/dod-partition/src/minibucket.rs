//! Mini-bucket statistics (Section V-A, stage 1).
//!
//! "The map tasks assume the entire data space is discretized to 'mini
//! buckets' that form the unit of processing. The map task will aggregate
//! the individual sample points and produce the statistics at the mini
//! bucket level." The bucket grid is the integer coordinate system DSHC
//! clusters in.

use crate::intrect::IntRect;
use dod_core::{CoreError, GridSpec, PointSet, Rect};

/// A uniform grid of mini buckets over the domain, with per-bucket sample
/// counts.
#[derive(Debug, Clone)]
pub struct MiniBucketGrid {
    grid: GridSpec,
    counts: Vec<u32>,
}

impl MiniBucketGrid {
    /// Discretizes `domain` into `buckets_per_dim`^d mini buckets and
    /// aggregates `sample` into per-bucket counts.
    ///
    /// # Errors
    /// Returns an error if the grid cannot be constructed (zero buckets,
    /// dimension mismatch) or a sample point has the wrong dimension.
    pub fn build(
        domain: &Rect,
        buckets_per_dim: usize,
        sample: &PointSet,
    ) -> Result<Self, CoreError> {
        if sample.dim() != domain.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: domain.dim(),
                actual: sample.dim(),
            });
        }
        let per_dim: Vec<usize> = (0..domain.dim())
            .map(|i| {
                if domain.extent(i) == 0.0 {
                    1
                } else {
                    buckets_per_dim
                }
            })
            .collect();
        let grid = GridSpec::new(domain.clone(), per_dim)?;
        let mut counts = vec![0u32; grid.num_cells()];
        for p in sample.iter() {
            // Points outside the declared domain are clamped into the
            // nearest boundary bucket, mirroring the paper's assumption
            // that the domain covers the data.
            counts[grid.cell_of(p)] += 1;
        }
        Ok(MiniBucketGrid { grid, counts })
    }

    /// The underlying grid.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.grid.dim()
    }

    /// Bucket counts per dimension.
    pub fn buckets_per_dim(&self, i: usize) -> u32 {
        self.grid.cells_in_dim(i) as u32
    }

    /// The per-dimension bucket-count limits, as needed by
    /// [`IntRect::grown_by_one`].
    pub fn limits(&self) -> Vec<u32> {
        (0..self.dim()).map(|i| self.buckets_per_dim(i)).collect()
    }

    /// Total number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.counts.len()
    }

    /// Total sample points aggregated.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// Sample count of the bucket at integer coordinates `idx`.
    pub fn count_at(&self, idx: &[u32]) -> u32 {
        let idx: Vec<usize> = idx.iter().map(|&v| v as usize).collect();
        self.counts[self.grid.linearize(&idx)]
    }

    /// Sum of sample counts over an integer box.
    pub fn count_in(&self, rect: &IntRect) -> u64 {
        let mut total = 0u64;
        let d = self.dim();
        let mut cursor: Vec<u32> = rect.lo().to_vec();
        loop {
            total += self.count_at(&cursor) as u64;
            let mut i = d;
            loop {
                if i == 0 {
                    return total;
                }
                i -= 1;
                if cursor[i] < rect.hi()[i] {
                    cursor[i] += 1;
                    cursor[(i + 1)..d].copy_from_slice(&rect.lo()[(i + 1)..d]);
                    break;
                }
            }
        }
    }

    /// Volume of a single mini bucket in real coordinates.
    pub fn bucket_volume(&self) -> f64 {
        (0..self.dim()).map(|i| self.grid.width(i)).product()
    }

    /// Converts an integer box of buckets into its real-coordinate
    /// rectangle (exact at domain boundaries).
    pub fn to_real_rect(&self, rect: &IntRect) -> Rect {
        let domain = self.grid.domain();
        let min: Vec<f64> = (0..self.dim())
            .map(|i| domain.min()[i] + rect.lo()[i] as f64 * self.grid.width(i))
            .collect();
        let max: Vec<f64> = (0..self.dim())
            .map(|i| {
                if rect.hi()[i] + 1 == self.buckets_per_dim(i) {
                    domain.max()[i]
                } else {
                    domain.min()[i] + (rect.hi()[i] + 1) as f64 * self.grid.width(i)
                }
            })
            .collect();
        Rect::new(min, max).expect("bucket bounds are valid")
    }

    /// Iterates over every bucket in row-major order as `(coords, count)`
    /// — the single scan DSHC consumes.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (Vec<u32>, u32)> + '_ {
        (0..self.num_buckets()).map(move |id| {
            let coords: Vec<u32> = self
                .grid
                .delinearize(id)
                .into_iter()
                .map(|v| v as u32)
                .collect();
            (coords, self.counts[id])
        })
    }

    /// Density of the single bucket containing `p` (sample points per
    /// unit volume).
    pub fn density_at(&self, p: &[f64]) -> f64 {
        let count = self.counts[self.grid.cell_of(p)];
        let vol = self.bucket_volume();
        if vol == 0.0 {
            return if count == 0 { 0.0 } else { f64::INFINITY };
        }
        count as f64 / vol
    }

    /// Density of an integer box: sample count divided by real volume.
    pub fn density_of(&self, rect: &IntRect) -> f64 {
        let vol = rect.cells() as f64 * self.bucket_volume();
        if vol == 0.0 {
            return if self.count_in(rect) == 0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        self.count_in(rect) as f64 / vol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> Rect {
        Rect::new(vec![0.0, 0.0], vec![8.0, 8.0]).unwrap()
    }

    fn grid_with(points: &[(f64, f64)], buckets: usize) -> MiniBucketGrid {
        MiniBucketGrid::build(&domain(), buckets, &PointSet::from_xy(points)).unwrap()
    }

    #[test]
    fn counts_aggregate_into_buckets() {
        let g = grid_with(&[(0.5, 0.5), (0.6, 0.4), (7.5, 7.5)], 8);
        assert_eq!(g.count_at(&[0, 0]), 2);
        assert_eq!(g.count_at(&[7, 7]), 1);
        assert_eq!(g.total_count(), 3);
        assert_eq!(g.num_buckets(), 64);
    }

    #[test]
    fn boundary_points_clamp() {
        let g = grid_with(&[(8.0, 8.0)], 8);
        assert_eq!(g.count_at(&[7, 7]), 1);
    }

    #[test]
    fn count_in_box() {
        let g = grid_with(&[(0.5, 0.5), (1.5, 0.5), (2.5, 0.5), (0.5, 1.5)], 8);
        let rect = IntRect::new(vec![0, 0], vec![1, 1]);
        assert_eq!(g.count_in(&rect), 3);
        let all = IntRect::new(vec![0, 0], vec![7, 7]);
        assert_eq!(g.count_in(&all), 4);
    }

    #[test]
    fn bucket_volume_and_density() {
        let g = grid_with(&[(0.5, 0.5), (0.6, 0.6)], 8);
        assert_eq!(g.bucket_volume(), 1.0);
        let unit = IntRect::unit(&[0, 0]);
        assert_eq!(g.density_of(&unit), 2.0);
        assert_eq!(g.density_of(&IntRect::unit(&[5, 5])), 0.0);
    }

    #[test]
    fn real_rect_round_trip() {
        let g = grid_with(&[], 8);
        let rect = g.to_real_rect(&IntRect::new(vec![2, 4], vec![3, 7]));
        assert_eq!(rect.min(), &[2.0, 4.0]);
        assert_eq!(rect.max(), &[4.0, 8.0]); // hi bucket 7 ends at domain max
    }

    #[test]
    fn iter_buckets_covers_all_row_major() {
        let g = grid_with(&[(0.5, 1.5)], 2);
        let buckets: Vec<(Vec<u32>, u32)> = g.iter_buckets().collect();
        assert_eq!(buckets.len(), 4);
        // Row-major: [0,0], [0,1], [1,0], [1,1]; point (0.5, 1.5) is in
        // x-bucket 0, y-bucket 0 (width 4.0 per bucket).
        assert_eq!(buckets[0].0, vec![0, 0]);
        assert_eq!(buckets[0].1, 1);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let sample = PointSet::new(3).unwrap();
        assert!(MiniBucketGrid::build(&domain(), 4, &sample).is_err());
    }

    #[test]
    fn degenerate_dimension_single_bucket() {
        let dom = Rect::new(vec![0.0, 0.0], vec![8.0, 0.0]).unwrap();
        let sample = PointSet::from_xy(&[(1.0, 0.0)]);
        let g = MiniBucketGrid::build(&dom, 4, &sample).unwrap();
        assert_eq!(g.buckets_per_dim(1), 1);
        assert_eq!(g.total_count(), 1);
    }
}

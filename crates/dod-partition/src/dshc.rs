//! Density and Spatial-aware Hierarchical Clustering (Section V-A, step 1).
//!
//! DSHC groups mini buckets of similar density into rectangular clusters
//! with a single scan, using the [`crate::af_tree::AfTree`] to find merge
//! candidates. It implements the paper's three constraints:
//!
//! 1. *density and spatial-aware*: only spatially-adjacent clusters of
//!    similar density (|Δdensity| < `Tdiff`, Definition 5.2) merge;
//! 2. *rectangle-shaped clusters only* (Definition 5.3), so the final
//!    partition plan stays cheap to apply at the mappers;
//! 3. *cardinality constraint*: a cluster never exceeds `Tmax#` points
//!    (the number a single reducer can hold in memory).
//!
//! Merging a bucket triggers the recursive upward merge of Definition 5.4:
//! the augmented cluster keeps absorbing eligible neighbors until no
//! further merge applies.

use crate::af_tree::AfTree;
use crate::intrect::IntRect;
use crate::minibucket::MiniBucketGrid;
use std::collections::HashMap;

/// A DSHC cluster: the materialized Aggregate Feature of Definition 5.1
/// (`numPoints`, bucket-space bounds; density is derived).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// Bucket-space bounds of the cluster.
    pub rect: IntRect,
    /// Number of sample points aggregated in the cluster.
    pub count: u64,
}

impl Cluster {
    /// Density in real coordinates: sample count over covered volume.
    pub fn density(&self, grid: &MiniBucketGrid) -> f64 {
        let vol = self.rect.cells() as f64 * grid.bucket_volume();
        if vol == 0.0 {
            if self.count == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.count as f64 / vol
        }
    }
}

/// DSHC tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct DshcConfig {
    /// Maximum density difference `Tdiff` (Definition 5.2), in absolute
    /// sample-points-per-volume units.
    pub tdiff: f64,
    /// Maximum number of (sample) points per cluster `Tmax#`
    /// (Definition 5.2). `u64::MAX` disables the cap.
    pub max_points: u64,
    /// AF-tree node capacity.
    pub tree_fanout: usize,
}

impl DshcConfig {
    /// A config with `tdiff` set relative to the grid's mean non-empty
    /// density: `tdiff = factor × total_count / domain_volume`.
    pub fn relative(grid: &MiniBucketGrid, factor: f64, max_points: u64) -> Self {
        let volume = grid.grid().domain().volume();
        let mean = if volume > 0.0 {
            grid.total_count() as f64 / volume
        } else {
            0.0
        };
        DshcConfig {
            tdiff: mean * factor,
            max_points,
            tree_fanout: 8,
        }
    }
}

impl Default for DshcConfig {
    fn default() -> Self {
        DshcConfig {
            tdiff: f64::INFINITY,
            max_points: u64::MAX,
            tree_fanout: 8,
        }
    }
}

/// The DSHC clustering algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dshc;

impl Dshc {
    /// Clusters every mini bucket of `grid` into rectangular partitions.
    ///
    /// The returned clusters are pairwise disjoint in bucket space and
    /// cover the grid exactly.
    pub fn cluster(grid: &MiniBucketGrid, config: &DshcConfig) -> Vec<Cluster> {
        let limits = grid.limits();
        let mut tree = AfTree::new(config.tree_fanout);
        let mut live: HashMap<u32, Cluster> = HashMap::new();
        let mut next_id: u32 = 0;

        for (coords, count) in grid.iter_buckets() {
            let bucket = Cluster {
                rect: IntRect::unit(&coords),
                count: count as u64,
            };

            // Search operation: overlapping-or-adjacent clusters.
            let probe = bucket.rect.grown_by_one(&limits);
            let lmc = tree.search_intersecting(&probe);

            // Merge operation: filter by the Definition 5.2 criteria and
            // pick the most density-similar candidate.
            let chosen = best_merge_candidate(grid, config, &bucket, &lmc, &live);

            match chosen {
                Some(cid) => {
                    let mut cluster = live.remove(&cid).expect("live cluster");
                    assert!(tree.remove(cid, &cluster.rect), "tree in sync");
                    cluster.rect = cluster.rect.union(&bucket.rect);
                    cluster.count += bucket.count;
                    // Recursive upward merge.
                    cluster = Self::merge_recursively(
                        grid, config, &limits, &mut tree, &mut live, cluster,
                    );
                    let id = next_id;
                    next_id += 1;
                    tree.insert(id, cluster.rect.clone());
                    live.insert(id, cluster);
                }
                None => {
                    // Insert operation: the bucket becomes its own cluster.
                    let id = next_id;
                    next_id += 1;
                    tree.insert(id, bucket.rect.clone());
                    live.insert(id, bucket);
                }
            }
        }

        let mut clusters: Vec<Cluster> = live.into_values().collect();
        // Deterministic output order: by lower-left corner.
        clusters.sort_by(|a, b| a.rect.lo().cmp(b.rect.lo()));
        clusters
    }

    /// Keeps merging `cluster` with eligible neighbors until none remains
    /// (the recursive merge along the path described for Definition 5.4).
    fn merge_recursively(
        grid: &MiniBucketGrid,
        config: &DshcConfig,
        limits: &[u32],
        tree: &mut AfTree,
        live: &mut HashMap<u32, Cluster>,
        mut cluster: Cluster,
    ) -> Cluster {
        loop {
            let probe = cluster.rect.grown_by_one(limits);
            let lmc = tree.search_intersecting(&probe);
            let Some(cid) = best_merge_candidate(grid, config, &cluster, &lmc, live) else {
                return cluster;
            };
            let other = live.remove(&cid).expect("live cluster");
            assert!(tree.remove(cid, &other.rect), "tree in sync");
            cluster.rect = cluster.rect.union(&other.rect);
            cluster.count += other.count;
        }
    }
}

/// Applies the Definition 5.2 merging criteria to every LMC candidate and
/// returns the one with the most similar density, if any.
fn best_merge_candidate(
    grid: &MiniBucketGrid,
    config: &DshcConfig,
    target: &Cluster,
    lmc: &[u32],
    live: &HashMap<u32, Cluster>,
) -> Option<u32> {
    let target_density = target.density(grid);
    let mut best: Option<(u32, f64)> = None;
    for &cid in lmc {
        let cand = &live[&cid];
        // Criterion 2: rectangular union.
        if !target.rect.union_is_rectangular(&cand.rect) {
            continue;
        }
        // Criterion 1: density similarity.
        let diff = (cand.density(grid) - target_density).abs();
        if diff.partial_cmp(&config.tdiff) != Some(std::cmp::Ordering::Less) {
            continue;
        }
        // Criterion 3: cardinality cap.
        if target.count + cand.count >= config.max_points {
            continue;
        }
        if best.is_none_or(|(_, d)| diff < d) {
            best = Some((cid, diff));
        }
    }
    best.map(|(cid, _)| cid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_core::{PointSet, Rect};

    fn grid_from(points: &[(f64, f64)], buckets: usize) -> MiniBucketGrid {
        let domain = Rect::new(vec![0.0, 0.0], vec![8.0, 8.0]).unwrap();
        MiniBucketGrid::build(&domain, buckets, &PointSet::from_xy(points)).unwrap()
    }

    /// Every bucket must end up in exactly one cluster.
    fn assert_exact_cover(grid: &MiniBucketGrid, clusters: &[Cluster]) {
        let total: u64 = clusters.iter().map(|c| c.rect.cells()).sum();
        assert_eq!(total, grid.num_buckets() as u64, "cell count covers grid");
        for (i, a) in clusters.iter().enumerate() {
            for b in &clusters[i + 1..] {
                assert!(
                    !a.rect.intersects(&b.rect),
                    "{:?} overlaps {:?}",
                    a.rect,
                    b.rect
                );
            }
        }
        let count: u64 = clusters.iter().map(|c| c.count).sum();
        assert_eq!(count, grid.total_count());
    }

    #[test]
    fn uniform_empty_grid_collapses_to_one_cluster() {
        let grid = grid_from(&[], 8);
        let clusters = Dshc::cluster(&grid, &DshcConfig::default());
        assert_exact_cover(&grid, &clusters);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].rect.cells(), 64);
    }

    #[test]
    fn unbounded_config_merges_everything() {
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| (0.1 + (i % 8) as f64, 0.1 + (i / 8) as f64))
            .collect();
        let grid = grid_from(&pts, 8);
        let clusters = Dshc::cluster(&grid, &DshcConfig::default());
        assert_exact_cover(&grid, &clusters);
        assert_eq!(clusters.len(), 1, "infinite tdiff merges all: {clusters:?}");
    }

    #[test]
    fn density_gate_separates_dense_block() {
        // Left half dense (16 pts per bucket), right half empty.
        let mut pts = Vec::new();
        for bx in 0..4 {
            for by in 0..8 {
                for i in 0..16 {
                    pts.push((bx as f64 + 0.03 * i as f64, by as f64 + 0.5));
                }
            }
        }
        let grid = grid_from(&pts, 8);
        let config = DshcConfig {
            tdiff: 1.0,
            max_points: u64::MAX,
            tree_fanout: 8,
        };
        let clusters = Dshc::cluster(&grid, &config);
        assert_exact_cover(&grid, &clusters);
        // Dense and empty halves cannot merge (Δdensity = 16 >= 1).
        assert!(clusters.len() >= 2);
        for c in &clusters {
            let d = c.density(&grid);
            assert!(!(1.0..=15.0).contains(&d), "mixed-density cluster: {d}");
        }
    }

    #[test]
    fn cardinality_cap_limits_cluster_counts() {
        let pts: Vec<(f64, f64)> = (0..64)
            .flat_map(|b| {
                let (bx, by) = (b % 8, b / 8);
                (0..4).map(move |i| (bx as f64 + 0.1 + 0.01 * i as f64, by as f64 + 0.5))
            })
            .collect();
        let grid = grid_from(&pts, 8);
        // Every bucket holds 4 samples; cap at 32 -> clusters of <= 8 buckets.
        let config = DshcConfig {
            tdiff: f64::INFINITY,
            max_points: 32,
            tree_fanout: 8,
        };
        let clusters = Dshc::cluster(&grid, &config);
        assert_exact_cover(&grid, &clusters);
        for c in &clusters {
            assert!(c.count < 32, "cluster of {} points exceeds Tmax#", c.count);
        }
        assert!(clusters.len() >= 8);
    }

    #[test]
    fn clusters_are_rectangular_by_construction() {
        // An L-shaped dense region must split into >= 2 rectangles.
        let mut pts = Vec::new();
        // Vertical bar x in [0,1), full height; horizontal bar y in [0,1).
        for by in 0..8 {
            for i in 0..8 {
                pts.push((0.1 + 0.05 * i as f64, by as f64 + 0.5));
            }
        }
        for bx in 1..8 {
            for i in 0..8 {
                pts.push((bx as f64 + 0.5, 0.1 + 0.05 * i as f64));
            }
        }
        let grid = grid_from(&pts, 8);
        let config = DshcConfig {
            tdiff: 4.0,
            max_points: u64::MAX,
            tree_fanout: 8,
        };
        let clusters = Dshc::cluster(&grid, &config);
        assert_exact_cover(&grid, &clusters);
        let dense: Vec<&Cluster> = clusters.iter().filter(|c| c.density(&grid) > 4.0).collect();
        assert!(
            dense.len() >= 2,
            "L-shape needs >= 2 rectangles, got {}",
            dense.len()
        );
    }

    #[test]
    fn single_bucket_grid() {
        let domain = Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        let grid = MiniBucketGrid::build(&domain, 1, &PointSet::from_xy(&[(0.5, 0.5)])).unwrap();
        let clusters = Dshc::cluster(&grid, &DshcConfig::default());
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].count, 1);
    }

    #[test]
    fn relative_config_scales_with_mean_density() {
        let pts: Vec<(f64, f64)> = (0..640)
            .map(|i| ((i % 80) as f64 * 0.1, (i / 80) as f64))
            .collect();
        let grid = grid_from(&pts, 8);
        let c = DshcConfig::relative(&grid, 0.5, 1000);
        // mean density = 640/64 = 10 per unit²; tdiff = 5.
        assert!((c.tdiff - 5.0).abs() < 1e-9);
        assert_eq!(c.max_points, 1000);
    }

    #[test]
    fn deterministic_output() {
        let pts: Vec<(f64, f64)> = (0..200)
            .map(|i| ((i * 7 % 80) as f64 * 0.1, (i * 13 % 80) as f64 * 0.1))
            .collect();
        let grid = grid_from(&pts, 8);
        let config = DshcConfig {
            tdiff: 2.0,
            max_points: 64,
            tree_fanout: 8,
        };
        let a = Dshc::cluster(&grid, &config);
        let b = Dshc::cluster(&grid, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn gaussian_blob_produces_fewer_clusters_than_buckets() {
        // A skewed dataset: dense 2x2-bucket blob + sparse background.
        let mut pts = Vec::new();
        for i in 0..400 {
            pts.push((2.0 + (i % 20) as f64 * 0.1, 2.0 + (i / 20) as f64 * 0.1));
        }
        for i in 0..16 {
            pts.push((0.5 + (i % 4) as f64 * 2.0, 0.5 + (i / 4) as f64 * 2.0));
        }
        let grid = grid_from(&pts, 8);
        let config = DshcConfig::relative(&grid, 1.0, u64::MAX);
        let clusters = Dshc::cluster(&grid, &config);
        assert_exact_cover(&grid, &clusters);
        assert!(clusters.len() < 64, "got {} clusters", clusters.len());
        assert!(clusters.len() > 1);
    }
}

//! Random sampling (Section V-A, stage 1).
//!
//! DMT "estimates the distribution of the data by drawing a sample from
//! the input dataset ... random sampling preserves the distribution of the
//! underlying dataset. The sampling rate Υ by default is set to a small
//! value, e.g., 0.5%."

use dod_core::PointSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's default sampling rate Υ (0.5%).
pub const DEFAULT_SAMPLE_RATE: f64 = 0.005;

/// Draws a Bernoulli sample of `data` at `rate`, deterministically from
/// `seed`. The rate is clamped into `[0, 1]`; at least one point is
/// returned for non-empty input so downstream planners always have a
/// distribution estimate.
pub fn sample_points(data: &PointSet, rate: f64, seed: u64) -> PointSet {
    let rate = rate.clamp(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = PointSet::with_capacity(data.dim(), (data.len() as f64 * rate) as usize + 1)
        .expect("dim >= 1");
    for p in data.iter() {
        if rng.gen_bool(rate) {
            out.push(p).expect("same dim");
        }
    }
    if out.is_empty() && !data.is_empty() {
        let idx = rng.gen_range(0..data.len());
        out.push(data.point(idx)).expect("same dim");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform(n: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = PointSet::new(2).unwrap();
        for _ in 0..n {
            s.push(&[rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)])
                .unwrap();
        }
        s
    }

    #[test]
    fn sample_size_close_to_rate() {
        let data = uniform(100_000, 1);
        let s = sample_points(&data, 0.005, 42);
        let expected = 500.0;
        assert!((s.len() as f64 - expected).abs() < 150.0, "got {}", s.len());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let data = uniform(5_000, 2);
        let a = sample_points(&data, 0.01, 7);
        let b = sample_points(&data, 0.01, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let data = uniform(5_000, 2);
        let a = sample_points(&data, 0.05, 1);
        let b = sample_points(&data, 0.05, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn nonempty_input_never_yields_empty_sample() {
        let data = uniform(10, 3);
        let s = sample_points(&data, 1e-9, 5);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn empty_input_yields_empty_sample() {
        let data = PointSet::new(2).unwrap();
        assert!(sample_points(&data, 0.5, 5).is_empty());
    }

    #[test]
    fn rate_one_keeps_everything() {
        let data = uniform(100, 4);
        let s = sample_points(&data, 1.0, 5);
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn rate_is_clamped() {
        let data = uniform(50, 5);
        assert_eq!(sample_points(&data, 7.5, 5).len(), 50);
        assert_eq!(sample_points(&data, -0.5, 5).len(), 1); // rescue point
    }

    #[test]
    fn sample_preserves_spatial_distribution() {
        // Points only in the left half; the sample must stay there.
        let mut data = PointSet::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20_000 {
            data.push(&[rng.gen_range(0.0..50.0), rng.gen_range(0.0..100.0)])
                .unwrap();
        }
        let s = sample_points(&data, 0.01, 9);
        for p in s.iter() {
            assert!(p[0] < 50.0);
        }
        assert!(s.len() > 100);
    }
}

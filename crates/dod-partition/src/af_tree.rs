//! The AF-tree: an R-tree-like index over cluster Aggregate Features
//! (Section V-A).
//!
//! "The key realization of DSHC relies on a well-designed Aggregate
//! Features (AF) data structure and a R-tree like index structure to hold
//! the AF information in its node as well as indexing spatial information,
//! called AF tree. Each leaf node of the AF tree corresponds to one
//! cluster ... A non-leaf node is represented by a pair
//! (Rect, child-pointer) where Rect is a bounding box that covers all
//! rectangles in the lower nodes' entries."
//!
//! The tree indexes integer bucket-space rectangles ([`IntRect`]) and maps
//! them to cluster ids. DSHC's search operation probes with a cluster's
//! rectangle grown by one bucket, which finds exactly the overlapping and
//! adjacent entries. Inserting past a node's capacity triggers the
//! standard R-tree split (linear seeds, least-enlargement distribution).

use crate::intrect::IntRect;

/// R-tree over `(cluster id, rectangle)` entries.
#[derive(Debug)]
pub struct AfTree {
    root: Node,
    max_entries: usize,
    len: usize,
}

#[derive(Debug)]
enum Node {
    Leaf(Vec<(u32, IntRect)>),
    Inner(Vec<(IntRect, Node)>),
}

impl Node {
    fn bounds(&self) -> Option<IntRect> {
        match self {
            Node::Leaf(entries) => entries
                .iter()
                .map(|(_, r)| r.clone())
                .reduce(|a, b| a.union(&b)),
            Node::Inner(children) => children
                .iter()
                .map(|(r, _)| r.clone())
                .reduce(|a, b| a.union(&b)),
        }
    }
}

impl AfTree {
    /// Creates an empty tree with the given node capacity (minimum 4).
    pub fn new(max_entries: usize) -> Self {
        AfTree {
            root: Node::Leaf(Vec::new()),
            max_entries: max_entries.max(4),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry.
    pub fn insert(&mut self, id: u32, rect: IntRect) {
        self.len += 1;
        if let Some((a, b)) = Self::insert_rec(&mut self.root, id, rect, self.max_entries) {
            // Root split: grow the tree by one level.
            let a_bounds = a.bounds().expect("split node non-empty");
            let b_bounds = b.bounds().expect("split node non-empty");
            self.root = Node::Inner(vec![(a_bounds, a), (b_bounds, b)]);
        }
    }

    /// Removes the entry with this id and rectangle. Returns whether an
    /// entry was removed.
    pub fn remove(&mut self, id: u32, rect: &IntRect) -> bool {
        let removed = Self::remove_rec(&mut self.root, id, rect);
        if removed {
            self.len -= 1;
            // Collapse a root with a single inner child.
            loop {
                match &mut self.root {
                    Node::Inner(children) if children.len() == 1 => {
                        let (_, child) = children.pop().expect("one child");
                        self.root = child;
                    }
                    Node::Inner(children) if children.is_empty() => {
                        self.root = Node::Leaf(Vec::new());
                        break;
                    }
                    _ => break,
                }
            }
        }
        removed
    }

    /// Ids of all entries whose rectangle intersects `probe` (inclusive).
    /// Probing with [`IntRect::grown_by_one`] of a cluster's rectangle
    /// yields the overlapping *and adjacent* clusters — the LMC candidates
    /// of DSHC's search operation.
    pub fn search_intersecting(&self, probe: &IntRect) -> Vec<u32> {
        let mut out = Vec::new();
        Self::search_rec(&self.root, probe, &mut out);
        out.sort_unstable();
        out
    }

    fn search_rec(node: &Node, probe: &IntRect, out: &mut Vec<u32>) {
        match node {
            Node::Leaf(entries) => {
                for (id, r) in entries {
                    if r.intersects(probe) {
                        out.push(*id);
                    }
                }
            }
            Node::Inner(children) => {
                for (bounds, child) in children {
                    if bounds.intersects(probe) {
                        Self::search_rec(child, probe, out);
                    }
                }
            }
        }
    }

    fn insert_rec(node: &mut Node, id: u32, rect: IntRect, cap: usize) -> Option<(Node, Node)> {
        match node {
            Node::Leaf(entries) => {
                entries.push((id, rect));
                if entries.len() > cap {
                    let split = split_leaf(std::mem::take(entries), cap);
                    return Some(split);
                }
                None
            }
            Node::Inner(children) => {
                // Least-enlargement child choice.
                let mut best = 0usize;
                let mut best_enl = u64::MAX;
                let mut best_cells = u64::MAX;
                for (i, (bounds, _)) in children.iter().enumerate() {
                    let enl = bounds.enlargement(&rect);
                    let cells = bounds.cells();
                    if enl < best_enl || (enl == best_enl && cells < best_cells) {
                        best = i;
                        best_enl = enl;
                        best_cells = cells;
                    }
                }
                let split = Self::insert_rec(&mut children[best].1, id, rect.clone(), cap);
                children[best].0 = children[best].0.union(&rect);
                if let Some((a, b)) = split {
                    let a_bounds = a.bounds().expect("non-empty");
                    let b_bounds = b.bounds().expect("non-empty");
                    children.remove(best);
                    children.push((a_bounds, a));
                    children.push((b_bounds, b));
                    if children.len() > cap {
                        let split = split_inner(std::mem::take(children), cap);
                        return Some(split);
                    }
                }
                None
            }
        }
    }

    fn remove_rec(node: &mut Node, id: u32, rect: &IntRect) -> bool {
        match node {
            Node::Leaf(entries) => {
                if let Some(pos) = entries.iter().position(|(eid, _)| *eid == id) {
                    entries.remove(pos);
                    true
                } else {
                    false
                }
            }
            Node::Inner(children) => {
                for i in 0..children.len() {
                    if !children[i].0.intersects(rect) {
                        continue;
                    }
                    if Self::remove_rec(&mut children[i].1, id, rect) {
                        // Tighten or drop the child.
                        match children[i].1.bounds() {
                            Some(b) => children[i].0 = b,
                            None => {
                                children.remove(i);
                            }
                        }
                        return true;
                    }
                }
                false
            }
        }
    }
}

/// Linear-split of an overfull leaf: pick the two entries whose union is
/// largest as seeds, distribute the rest by least enlargement.
fn split_leaf(entries: Vec<(u32, IntRect)>, _cap: usize) -> (Node, Node) {
    let (sa, sb) = pick_seeds(entries.iter().map(|(_, r)| r));
    let mut a_entries: Vec<(u32, IntRect)> = Vec::new();
    let mut b_entries: Vec<(u32, IntRect)> = Vec::new();
    let mut a_bounds: Option<IntRect> = None;
    let mut b_bounds: Option<IntRect> = None;
    for (i, (id, r)) in entries.into_iter().enumerate() {
        let to_a = if i == sa {
            true
        } else if i == sb {
            false
        } else {
            prefers_a(&r, &a_bounds, &b_bounds, a_entries.len(), b_entries.len())
        };
        if to_a {
            a_bounds = Some(a_bounds.map_or(r.clone(), |b| b.union(&r)));
            a_entries.push((id, r));
        } else {
            b_bounds = Some(b_bounds.map_or(r.clone(), |b| b.union(&r)));
            b_entries.push((id, r));
        }
    }
    (Node::Leaf(a_entries), Node::Leaf(b_entries))
}

/// Linear-split of an overfull inner node.
fn split_inner(children: Vec<(IntRect, Node)>, _cap: usize) -> (Node, Node) {
    let (sa, sb) = pick_seeds(children.iter().map(|(r, _)| r));
    let mut a_children: Vec<(IntRect, Node)> = Vec::new();
    let mut b_children: Vec<(IntRect, Node)> = Vec::new();
    let mut a_bounds: Option<IntRect> = None;
    let mut b_bounds: Option<IntRect> = None;
    for (i, (r, n)) in children.into_iter().enumerate() {
        let to_a = if i == sa {
            true
        } else if i == sb {
            false
        } else {
            prefers_a(&r, &a_bounds, &b_bounds, a_children.len(), b_children.len())
        };
        if to_a {
            a_bounds = Some(a_bounds.map_or(r.clone(), |b| b.union(&r)));
            a_children.push((r, n));
        } else {
            b_bounds = Some(b_bounds.map_or(r.clone(), |b| b.union(&r)));
            b_children.push((r, n));
        }
    }
    (Node::Inner(a_children), Node::Inner(b_children))
}

/// Indices of the two rectangles whose pairwise union is largest.
fn pick_seeds<'a, I>(rects: I) -> (usize, usize)
where
    I: Iterator<Item = &'a IntRect>,
{
    let rects: Vec<&IntRect> = rects.collect();
    debug_assert!(rects.len() >= 2);
    let mut best = (0, 1);
    let mut best_waste = 0i64;
    for i in 0..rects.len() {
        for j in i + 1..rects.len() {
            let waste = rects[i].union(rects[j]).cells() as i64
                - rects[i].cells() as i64
                - rects[j].cells() as i64;
            if waste > best_waste || (i, j) == (0, 1) {
                best = (i, j);
                best_waste = waste;
            }
        }
    }
    best
}

/// Least-enlargement group preference, breaking ties toward the smaller
/// group to keep the split balanced.
fn prefers_a(
    r: &IntRect,
    a_bounds: &Option<IntRect>,
    b_bounds: &Option<IntRect>,
    a_len: usize,
    b_len: usize,
) -> bool {
    let enl_a = a_bounds.as_ref().map_or(0, |b| b.enlargement(r));
    let enl_b = b_bounds.as_ref().map_or(0, |b| b.enlargement(r));
    if enl_a != enl_b {
        enl_a < enl_b
    } else {
        a_len <= b_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(x: u32, y: u32) -> IntRect {
        IntRect::unit(&[x, y])
    }

    #[test]
    fn insert_and_search_point_entries() {
        let mut t = AfTree::new(4);
        for x in 0..10u32 {
            t.insert(x, unit(x, 0));
        }
        assert_eq!(t.len(), 10);
        assert_eq!(t.search_intersecting(&unit(3, 0)), vec![3]);
        // Grown probe finds the adjacent entries too.
        let probe = unit(3, 0).grown_by_one(&[10, 1]);
        assert_eq!(t.search_intersecting(&probe), vec![2, 3, 4]);
    }

    #[test]
    fn search_on_empty_tree() {
        let t = AfTree::new(4);
        assert!(t.search_intersecting(&unit(0, 0)).is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn remove_entries() {
        let mut t = AfTree::new(4);
        for x in 0..20u32 {
            t.insert(x, unit(x, x));
        }
        assert!(t.remove(7, &unit(7, 7)));
        assert!(!t.remove(7, &unit(7, 7)));
        assert_eq!(t.len(), 19);
        assert!(t.search_intersecting(&unit(7, 7)).is_empty());
        assert_eq!(t.search_intersecting(&unit(8, 8)), vec![8]);
    }

    #[test]
    fn remove_everything_leaves_empty_tree() {
        let mut t = AfTree::new(4);
        for x in 0..30u32 {
            t.insert(x, unit(x % 6, x / 6));
        }
        for x in 0..30u32 {
            assert!(t.remove(x, &unit(x % 6, x / 6)), "remove {x}");
        }
        assert!(t.is_empty());
        assert!(t
            .search_intersecting(&IntRect::new(vec![0, 0], vec![9, 9]))
            .is_empty());
    }

    #[test]
    fn splits_preserve_all_entries() {
        let mut t = AfTree::new(4);
        let n = 200u32;
        for i in 0..n {
            t.insert(i, unit(i % 16, i / 16));
        }
        let all = t.search_intersecting(&IntRect::new(vec![0, 0], vec![15, 15]));
        assert_eq!(all.len(), n as usize);
    }

    #[test]
    fn search_box_entries() {
        let mut t = AfTree::new(4);
        t.insert(0, IntRect::new(vec![0, 0], vec![3, 3]));
        t.insert(1, IntRect::new(vec![4, 0], vec![7, 3]));
        t.insert(2, IntRect::new(vec![0, 4], vec![7, 7]));
        // Probe overlapping only cluster 1.
        assert_eq!(
            t.search_intersecting(&IntRect::new(vec![5, 1], vec![6, 2])),
            vec![1]
        );
        // Probe at the seam finds both (inclusive intersection).
        assert_eq!(
            t.search_intersecting(&IntRect::new(vec![3, 0], vec![4, 0])),
            vec![0, 1]
        );
    }

    #[test]
    fn reinsertion_after_growth() {
        // The DSHC update pattern: remove a cluster, insert a grown one.
        let mut t = AfTree::new(4);
        t.insert(0, IntRect::new(vec![0, 0], vec![1, 1]));
        t.insert(1, IntRect::new(vec![2, 0], vec![3, 1]));
        assert!(t.remove(0, &IntRect::new(vec![0, 0], vec![1, 1])));
        assert!(t.remove(1, &IntRect::new(vec![2, 0], vec![3, 1])));
        t.insert(2, IntRect::new(vec![0, 0], vec![3, 1]));
        assert_eq!(t.len(), 1);
        assert_eq!(t.search_intersecting(&unit(1, 0)), vec![2]);
    }

    #[test]
    fn random_workload_matches_linear_scan() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let mut t = AfTree::new(6);
        let mut reference: Vec<(u32, IntRect)> = Vec::new();
        let mut next_id = 0u32;
        for _ in 0..500 {
            if !reference.is_empty() && rng.gen_bool(0.3) {
                let i = rng.gen_range(0..reference.len());
                let (id, rect) = reference.swap_remove(i);
                assert!(t.remove(id, &rect));
            } else {
                let x0 = rng.gen_range(0..28u32);
                let y0 = rng.gen_range(0..28u32);
                let rect = IntRect::new(
                    vec![x0, y0],
                    vec![x0 + rng.gen_range(0..4), y0 + rng.gen_range(0..4)],
                );
                t.insert(next_id, rect.clone());
                reference.push((next_id, rect));
                next_id += 1;
            }
            // Compare a random probe against linear scan.
            let px = rng.gen_range(0..30u32);
            let py = rng.gen_range(0..30u32);
            let probe = IntRect::new(
                vec![px, py],
                vec![px + rng.gen_range(0..3), py + rng.gen_range(0..3)],
            );
            let mut expected: Vec<u32> = reference
                .iter()
                .filter(|(_, r)| r.intersects(&probe))
                .map(|(id, _)| *id)
                .collect();
            expected.sort_unstable();
            assert_eq!(t.search_intersecting(&probe), expected);
            assert_eq!(t.len(), reference.len());
        }
    }
}

//! Partition plans, point routing, and the multi-tactic plan
//! (Section III-C, Section V).
//!
//! A [`PartitionPlan`] is a set of disjoint rectangles covering the domain
//! plus an O(1)–O(log m) [`Locator`] that maps a point to its core
//! partition. A [`Router`] adds the supporting-area routing of
//! Definition 3.3: for each point, the partitions it must be replicated
//! into. A [`MultiTacticPlan`] bundles the partition plan with the
//! per-partition algorithm plan (Definition 3.4) and the reducer
//! allocation plan (Section V-A step 3).

use crate::dshc::Cluster;
use crate::minibucket::MiniBucketGrid;
use crate::packing::{allocate, AllocationSpec, BalanceWeight};
use dod_core::{CoreError, GridSpec, OutlierParams, PointSet, Rect};
use dod_detect::cost::{AlgorithmKind, CostModel, CostTerms, CostWeights};

/// Maps points to partitions.
#[derive(Debug, Clone)]
pub enum Locator {
    /// Partition id = grid cell id (Domain / uniSpace plans).
    Grid(GridSpec),
    /// Mini-bucket lookup table (DSHC plans): bucket cell → partition.
    Lut {
        /// The mini-bucket grid.
        grid: GridSpec,
        /// Partition id per bucket cell.
        lut: Vec<u32>,
    },
    /// Binary split tree (DDriven / CDriven plans).
    Tree(SplitTree),
}

/// A kd-style binary split tree over the domain.
#[derive(Debug, Clone, Default)]
pub struct SplitTree {
    nodes: Vec<SplitNode>,
}

/// One node of a [`SplitTree`].
#[derive(Debug, Clone)]
pub enum SplitNode {
    /// A leaf holding its partition id.
    Leaf(u32),
    /// An internal split: `x[dim] < at` goes left, else right.
    Split {
        /// Split dimension.
        dim: usize,
        /// Split coordinate.
        at: f64,
        /// Index of the left child node.
        left: u32,
        /// Index of the right child node.
        right: u32,
    },
}

impl SplitTree {
    /// Creates a tree from its node arena; node 0 is the root.
    ///
    /// # Panics
    /// Panics if `nodes` is empty.
    pub fn new(nodes: Vec<SplitNode>) -> Self {
        assert!(!nodes.is_empty(), "split tree needs at least a root");
        SplitTree { nodes }
    }

    /// The partition id of the leaf containing `x`.
    pub fn locate(&self, x: &[f64]) -> u32 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                SplitNode::Leaf(pid) => return *pid,
                SplitNode::Split {
                    dim,
                    at,
                    left,
                    right,
                } => {
                    node = if x[*dim] < *at {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }
}

/// A disjoint rectangular decomposition of the domain.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    domain: Rect,
    rects: Vec<Rect>,
    locator: Locator,
}

impl PartitionPlan {
    /// A plan whose partitions are exactly the cells of `grid`.
    pub fn from_grid(grid: GridSpec) -> Self {
        let rects = (0..grid.num_cells()).map(|i| grid.cell_rect(i)).collect();
        PartitionPlan {
            domain: grid.domain().clone(),
            rects,
            locator: Locator::Grid(grid),
        }
    }

    /// A plan built from DSHC clusters over a mini-bucket grid.
    ///
    /// # Errors
    /// Returns an error if the clusters do not exactly tile the bucket
    /// grid.
    pub fn from_clusters(
        buckets: &MiniBucketGrid,
        clusters: &[Cluster],
    ) -> Result<Self, CoreError> {
        let grid = buckets.grid().clone();
        let mut lut = vec![u32::MAX; grid.num_cells()];
        let mut rects = Vec::with_capacity(clusters.len());
        for (pid, cluster) in clusters.iter().enumerate() {
            rects.push(buckets.to_real_rect(&cluster.rect));
            // Paint every bucket of the cluster.
            let d = grid.dim();
            let mut cursor: Vec<usize> = cluster.rect.lo().iter().map(|&v| v as usize).collect();
            let hi: Vec<usize> = cluster.rect.hi().iter().map(|&v| v as usize).collect();
            loop {
                let cell = grid.linearize(&cursor);
                if lut[cell] != u32::MAX {
                    return Err(CoreError::InvalidParameter {
                        name: "clusters",
                        reason: format!("bucket {cell} covered twice"),
                    });
                }
                lut[cell] = pid as u32;
                let mut i = d;
                let mut done = true;
                while i > 0 {
                    i -= 1;
                    if cursor[i] < hi[i] {
                        cursor[i] += 1;
                        for (j, c) in cursor.iter_mut().enumerate().take(d).skip(i + 1) {
                            *c = cluster.rect.lo()[j] as usize;
                        }
                        done = false;
                        break;
                    }
                }
                if done {
                    break;
                }
            }
        }
        if lut.contains(&u32::MAX) {
            return Err(CoreError::InvalidParameter {
                name: "clusters",
                reason: "clusters do not cover every bucket".into(),
            });
        }
        Ok(PartitionPlan {
            domain: grid.domain().clone(),
            rects,
            locator: Locator::Lut { grid, lut },
        })
    }

    /// A plan defined by a split tree and the per-partition rectangles
    /// (index-aligned with the tree's leaf partition ids).
    pub fn from_split_tree(domain: Rect, tree: SplitTree, rects: Vec<Rect>) -> Self {
        PartitionPlan {
            domain,
            rects,
            locator: Locator::Tree(tree),
        }
    }

    /// The domain covered by the plan.
    pub fn domain(&self) -> &Rect {
        &self.domain
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.rects.len()
    }

    /// Rectangle of partition `i`.
    pub fn rect(&self, i: usize) -> &Rect {
        &self.rects[i]
    }

    /// All partition rectangles.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Core partition of `x`.
    pub fn locate(&self, x: &[f64]) -> u32 {
        match &self.locator {
            Locator::Grid(grid) => grid.cell_of(x) as u32,
            Locator::Lut { grid, lut } => lut[grid.cell_of(x)],
            Locator::Tree(tree) => tree.locate(x),
        }
    }

    /// Sample count per partition.
    pub fn count_sample(&self, sample: &PointSet) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_partitions()];
        for p in sample.iter() {
            counts[self.locate(p) as usize] += 1;
        }
        counts
    }

    /// Builds the supporting-area router for threshold `r` under the
    /// Euclidean metric.
    pub fn router(&self, r: f64) -> Router {
        Router::build(self, r, dod_core::Metric::Euclidean)
    }

    /// Builds the supporting-area router for arbitrary metrics.
    pub fn router_with_metric(&self, r: f64, metric: dod_core::Metric) -> Router {
        Router::build(self, r, metric)
    }
}

/// The map-side routing of one point: its core partition plus every
/// partition it supports (Definition 3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Routing {
    /// Partition in which the point is core.
    pub core: u32,
    /// Partitions for which the point is a support point.
    pub support: Vec<u32>,
}

/// Accelerated supporting-area routing over a [`PartitionPlan`].
///
/// A coarse uniform grid maps each coarse cell to the candidate partitions
/// whose r-expanded rectangle intersects it, so routing a point tests only
/// a handful of partitions instead of all `m`.
#[derive(Debug, Clone)]
pub struct Router {
    plan: PartitionPlan,
    r: f64,
    metric: dod_core::Metric,
    coarse: GridSpec,
    candidates: Vec<Vec<u32>>,
}

impl Router {
    fn build(plan: &PartitionPlan, r: f64, metric: dod_core::Metric) -> Router {
        let dim = plan.domain().dim();
        // Aim for ~4 coarse cells per partition, capped for memory.
        let target = (plan.num_partitions() * 4).clamp(1, 65_536);
        let per_dim = ((target as f64).powf(1.0 / dim as f64).ceil() as usize).clamp(1, 64);
        let counts: Vec<usize> = (0..dim)
            .map(|i| {
                if plan.domain().extent(i) == 0.0 {
                    1
                } else {
                    per_dim
                }
            })
            .collect();
        let coarse = GridSpec::new(plan.domain().clone(), counts).expect("valid coarse grid");
        let mut candidates: Vec<Vec<u32>> = vec![Vec::new(); coarse.num_cells()];
        for (pid, rect) in plan.rects().iter().enumerate() {
            let grown = rect.expanded(r);
            for cell in coarse.cells_intersecting(&grown) {
                candidates[cell].push(pid as u32);
            }
        }
        Router {
            plan: plan.clone(),
            r,
            metric,
            coarse,
            candidates,
        }
    }

    /// The distance threshold the router was built for.
    pub fn r(&self) -> f64 {
        self.r
    }

    /// Routes one point.
    pub fn route(&self, x: &[f64]) -> Routing {
        let core = self.plan.locate(x);
        let mut support = Vec::new();
        for &pid in &self.candidates[self.coarse.cell_of(x)] {
            if pid == core {
                continue;
            }
            let rect = self.plan.rect(pid as usize);
            if self.metric.min_dist_to_rect(rect.min(), rect.max(), x) <= self.r {
                support.push(pid);
            }
        }
        support.sort_unstable();
        Routing { core, support }
    }
}

/// One candidate's predicted cost on one partition, with the raw op
/// counts behind it.
#[derive(Debug, Clone, Copy)]
pub struct CandidateCost {
    /// The candidate algorithm.
    pub algorithm: AlgorithmKind,
    /// Total predicted cost (weighted ops; on the locality-aware path
    /// this includes the constant per-partition overhead).
    pub cost: f64,
    /// Raw (unweighted) pair/structural op counts — excludes the
    /// per-partition overhead, which is charged equally to every
    /// candidate and so never affects selection.
    pub terms: CostTerms,
}

/// Plan-time introspection record for one partition: the full candidate
/// set the planner compared, the winner, and its margin.
#[derive(Debug, Clone)]
pub struct PartitionReport {
    /// Partition id.
    pub partition: usize,
    /// Estimated real cardinality.
    pub n_est: f64,
    /// Footprint volume `A(D)`.
    pub volume: f64,
    /// Hit probability `μ = A(p)/A(D)` (Lemma 4.1's density term).
    pub density_mu: f64,
    /// Every candidate considered, in candidate order.
    pub candidates: Vec<CandidateCost>,
    /// The selected algorithm.
    pub winner: AlgorithmKind,
    /// The winner's predicted cost.
    pub winner_cost: f64,
    /// Runner-up cost minus winner cost: `0.0` with a single candidate,
    /// and negative only for fixed (monolithic-baseline) plans where the
    /// pinned algorithm was not the cheapest. Always finite.
    pub margin: f64,
}

/// Plan-time introspection for a whole [`MultiTacticPlan`] — what `dod
/// explain` renders and what the engine's cost audit folds measured work
/// against.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// The op-class weights the planner charged.
    pub weights: CostWeights,
    /// Whether a measured calibration profile was in effect (false means
    /// the legacy unit-weight fallback).
    pub calibrated: bool,
    /// Name of the kernel backend whose calibration rows priced the plan
    /// (`"scalar"`, `"avx2"`, or `"neon"`), so cost-audit ratios are
    /// attributable to the backend that was actually benchmarked.
    pub backend: String,
    /// One record per partition, in partition order.
    pub partitions: Vec<PartitionReport>,
}

impl Default for PlanReport {
    fn default() -> Self {
        PlanReport {
            weights: CostWeights::default(),
            calibrated: false,
            backend: "scalar".to_owned(),
            partitions: Vec::new(),
        }
    }
}

impl PlanReport {
    /// Sum of winner costs over all partitions.
    pub fn total_predicted(&self) -> f64 {
        self.partitions.iter().map(|p| p.winner_cost).sum()
    }
}

/// Picks the winner among `candidates` with the same semantics as
/// [`dod_detect::cost::choose_algorithm`]: minimal cost, ties broken in
/// favor of the earlier candidate. Returns `(winner, margin)`.
fn pick_winner(candidates: &[CandidateCost]) -> (usize, f64) {
    assert!(!candidates.is_empty(), "candidate set must not be empty");
    let mut best = 0;
    for (i, c) in candidates.iter().enumerate().skip(1) {
        if c.cost < candidates[best].cost {
            best = i;
        }
    }
    let margin = candidates
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != best)
        .map(|(_, c)| c.cost - candidates[best].cost)
        .fold(f64::INFINITY, f64::min);
    (best, if margin.is_finite() { margin } else { 0.0 })
}

/// Everything the preprocessing job hands to the detection job: partition
/// plan, algorithm plan, allocation plan, and the cost estimates behind
/// them.
#[derive(Debug, Clone)]
pub struct MultiTacticPlan {
    /// The partition plan (map side).
    pub plan: PartitionPlan,
    /// Detection algorithm per partition (reduce side; Definition 3.4).
    pub algorithms: Vec<AlgorithmKind>,
    /// Reducer index per partition (partitioner).
    pub allocation: Vec<usize>,
    /// Predicted cost per partition under its chosen algorithm.
    pub predicted_costs: Vec<f64>,
    /// Estimated real cardinality per partition (sample count / rate).
    pub estimated_counts: Vec<f64>,
    /// Plan-time introspection: the candidate comparison behind every
    /// `algorithms[pid]` entry.
    pub report: PlanReport,
}

impl MultiTacticPlan {
    /// Builds the full multi-tactic plan for a partition plan: estimates
    /// per-partition cardinalities from the sample, selects the cheapest
    /// algorithm per partition (Corollary 4.3 over `candidates`), and
    /// allocates partitions to `num_reducers` reducers under `policy`.
    pub fn build(
        plan: PartitionPlan,
        sample: &PointSet,
        sample_rate: f64,
        params: OutlierParams,
        candidates: &[AlgorithmKind],
        num_reducers: usize,
        spec: AllocationSpec,
    ) -> Self {
        Self::build_weighted(
            plan,
            sample,
            sample_rate,
            params,
            candidates,
            num_reducers,
            spec,
            CostWeights::UNIT,
        )
    }

    /// [`MultiTacticPlan::build`] with explicit op-class weights (from a
    /// measured calibration profile). Unit weights reproduce `build`
    /// exactly.
    #[allow(clippy::too_many_arguments)]
    pub fn build_weighted(
        plan: PartitionPlan,
        sample: &PointSet,
        sample_rate: f64,
        params: OutlierParams,
        candidates: &[AlgorithmKind],
        num_reducers: usize,
        spec: AllocationSpec,
        cost_weights: CostWeights,
    ) -> Self {
        assert!(!candidates.is_empty(), "candidate set must not be empty");
        let model = CostModel::new(params, plan.domain().dim()).with_weights(cost_weights);
        let counts = plan.count_sample(sample);
        let scale = if sample_rate > 0.0 {
            1.0 / sample_rate
        } else {
            1.0
        };
        let mut algorithms = Vec::with_capacity(plan.num_partitions());
        let mut costs = Vec::with_capacity(plan.num_partitions());
        let mut estimated = Vec::with_capacity(plan.num_partitions());
        let mut partitions = Vec::with_capacity(plan.num_partitions());
        for (pid, &c) in counts.iter().enumerate() {
            let n_est = c as f64 * scale;
            let volume = plan.rect(pid).volume();
            let candidate_costs: Vec<CandidateCost> = candidates
                .iter()
                .map(|&kind| CandidateCost {
                    algorithm: kind,
                    cost: model.cost(kind, n_est as usize, volume),
                    terms: model.cost_terms(kind, n_est as usize, volume),
                })
                .collect();
            let (best, margin) = pick_winner(&candidate_costs);
            let (alg, cost) = (candidate_costs[best].algorithm, candidate_costs[best].cost);
            partitions.push(PartitionReport {
                partition: pid,
                n_est,
                volume,
                density_mu: model.hit_probability(volume),
                candidates: candidate_costs,
                winner: alg,
                winner_cost: cost,
                margin,
            });
            algorithms.push(alg);
            costs.push(cost);
            estimated.push(n_est);
        }
        let weights = match spec.weight {
            BalanceWeight::Cost => &costs,
            BalanceWeight::Cardinality => &estimated,
        };
        let allocation = allocate(weights, num_reducers, spec.policy);
        MultiTacticPlan {
            plan,
            algorithms,
            allocation,
            predicted_costs: costs,
            estimated_counts: estimated,
            report: PlanReport {
                weights: cost_weights,
                calibrated: !cost_weights.is_unit(),
                partitions,
                ..PlanReport::default()
            },
        }
    }

    /// Builds the multi-tactic plan from precomputed per-partition
    /// estimates (see [`crate::estimate::LocalCostEstimator`]).
    ///
    /// With `fixed == Some(kind)` every partition runs `kind` (the
    /// monolithic baselines) and allocation weights use that kind's cost;
    /// otherwise each partition gets its cheapest candidate.
    ///
    /// `cost_weights` records the op-class weights the estimates were
    /// computed under (pass the estimator's weights; they only feed the
    /// plan report — the estimates themselves are already weighted).
    pub fn from_estimates(
        plan: PartitionPlan,
        estimates: &[crate::estimate::PartitionEstimate],
        fixed: Option<AlgorithmKind>,
        num_reducers: usize,
        spec: AllocationSpec,
        cost_weights: CostWeights,
    ) -> Self {
        assert_eq!(
            estimates.len(),
            plan.num_partitions(),
            "one estimate per partition"
        );
        let mut algorithms = Vec::with_capacity(estimates.len());
        let mut costs = Vec::with_capacity(estimates.len());
        let mut counts = Vec::with_capacity(estimates.len());
        let mut partitions = Vec::with_capacity(estimates.len());
        for (pid, e) in estimates.iter().enumerate() {
            let (alg, cost) = match fixed {
                Some(kind) => (kind, e.cost_of(kind)),
                None => e.best(),
            };
            let candidate_costs: Vec<CandidateCost> = e
                .costs
                .iter()
                .enumerate()
                .map(|(i, &(algorithm, c))| CandidateCost {
                    algorithm,
                    cost: c,
                    terms: e.terms.get(i).copied().unwrap_or_default(),
                })
                .collect();
            // Margin against the cheapest *other* candidate; negative
            // when `fixed` pinned a non-optimal algorithm.
            let margin = candidate_costs
                .iter()
                .filter(|c| c.algorithm != alg)
                .map(|c| c.cost - cost)
                .fold(f64::INFINITY, f64::min);
            partitions.push(PartitionReport {
                partition: pid,
                n_est: e.n_est,
                volume: plan.rect(pid).volume(),
                density_mu: e.hit_mu,
                candidates: candidate_costs,
                winner: alg,
                winner_cost: cost,
                margin: if margin.is_finite() { margin } else { 0.0 },
            });
            algorithms.push(alg);
            costs.push(cost);
            counts.push(e.n_est);
        }
        let weights = match spec.weight {
            BalanceWeight::Cost => &costs,
            BalanceWeight::Cardinality => &counts,
        };
        let allocation = allocate(weights, num_reducers, spec.policy);
        MultiTacticPlan {
            plan,
            algorithms,
            allocation,
            predicted_costs: costs,
            estimated_counts: counts,
            report: PlanReport {
                weights: cost_weights,
                calibrated: !cost_weights.is_unit(),
                partitions,
                ..PlanReport::default()
            },
        }
    }

    /// Builds a "monolithic" plan that uses one fixed algorithm for every
    /// partition (the baselines of Section VI), still estimating costs so
    /// allocation policies can act on them.
    pub fn monolithic(
        plan: PartitionPlan,
        sample: &PointSet,
        sample_rate: f64,
        params: OutlierParams,
        kind: AlgorithmKind,
        num_reducers: usize,
        spec: AllocationSpec,
    ) -> Self {
        let mut mt = MultiTacticPlan::build(
            plan,
            sample,
            sample_rate,
            params,
            &[kind],
            num_reducers,
            spec,
        );
        // `build` with a single candidate already fixes the algorithm;
        // keep the invariant explicit.
        debug_assert!(mt.algorithms.iter().all(|&a| a == kind));
        mt.algorithms.iter_mut().for_each(|a| *a = kind);
        mt
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.plan.num_partitions()
    }

    /// How far the observed per-partition point counts have drifted from
    /// the plan's predictions ([`MultiTacticPlan::estimated_counts`]).
    ///
    /// Returns [`distribution_drift`] between the two, in `[0, 1]`: `0`
    /// when the observed mass lands exactly as predicted, approaching `1`
    /// when it concentrates where the plan expected none. A resident
    /// engine re-plans when this exceeds its drift threshold — the plan's
    /// cost balancing (and hence its algorithm choices) was fitted to the
    /// predicted distribution, not the drifted one.
    ///
    /// `observed` is indexed by partition id; missing trailing entries
    /// count as zero, surplus entries (points that fit no partition) are
    /// ignored.
    pub fn drift_against(&self, observed: &[f64]) -> f64 {
        let m = self.estimated_counts.len();
        distribution_drift(&self.estimated_counts, &observed[..observed.len().min(m)])
    }
}

/// Total-variation distance between two non-negative weight vectors,
/// each normalized to a probability distribution: `½ Σ |p_i − q_i|`,
/// in `[0, 1]`.
///
/// Shorter vectors are implicitly zero-padded; if either vector has no
/// mass at all, the drift is `0` when both are empty and `1` otherwise
/// (all mass moved somewhere unaccounted for).
pub fn distribution_drift(predicted: &[f64], observed: &[f64]) -> f64 {
    let sum = |v: &[f64]| -> f64 { v.iter().filter(|x| x.is_finite() && **x > 0.0).sum() };
    let p_total = sum(predicted);
    let q_total = sum(observed);
    match (p_total > 0.0, q_total > 0.0) {
        (false, false) => return 0.0,
        (true, true) => {}
        _ => return 1.0,
    }
    let len = predicted.len().max(observed.len());
    let mass = |v: &[f64], i: usize| -> f64 {
        v.get(i)
            .copied()
            .filter(|x| x.is_finite() && *x > 0.0)
            .unwrap_or(0.0)
    };
    let mut tv = 0.0;
    for i in 0..len {
        tv += (mass(predicted, i) / p_total - mass(observed, i) / q_total).abs();
    }
    tv / 2.0
}

/// Shared inputs every partitioning strategy receives.
#[derive(Debug, Clone, Copy)]
pub struct PlanContext {
    /// Outlier parameters (needed by cost-aware strategies).
    pub params: OutlierParams,
    /// Desired number of partitions `m`.
    pub target_partitions: usize,
    /// Sampling rate Υ the sample was drawn with (to scale counts).
    pub sample_rate: f64,
}

impl PlanContext {
    /// Creates a context.
    pub fn new(params: OutlierParams, target_partitions: usize, sample_rate: f64) -> Self {
        PlanContext {
            params,
            target_partitions: target_partitions.max(1),
            sample_rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dshc::{Dshc, DshcConfig};

    fn domain() -> Rect {
        Rect::new(vec![0.0, 0.0], vec![8.0, 8.0]).unwrap()
    }

    fn params() -> OutlierParams {
        OutlierParams::new(1.0, 3).unwrap()
    }

    #[test]
    fn grid_plan_locates_like_grid() {
        let grid = GridSpec::uniform(domain(), 4).unwrap();
        let plan = PartitionPlan::from_grid(grid.clone());
        assert_eq!(plan.num_partitions(), 16);
        for p in [[0.5, 0.5], [7.9, 7.9], [4.0, 4.0], [8.0, 8.0]] {
            assert_eq!(plan.locate(&p), grid.cell_of(&p) as u32);
        }
    }

    #[test]
    fn split_tree_locates_half_open() {
        // Split at x=4: left is [0,4), right is [4,8].
        let tree = SplitTree::new(vec![
            SplitNode::Split {
                dim: 0,
                at: 4.0,
                left: 1,
                right: 2,
            },
            SplitNode::Leaf(0),
            SplitNode::Leaf(1),
        ]);
        let rects = vec![
            Rect::new(vec![0.0, 0.0], vec![4.0, 8.0]).unwrap(),
            Rect::new(vec![4.0, 0.0], vec![8.0, 8.0]).unwrap(),
        ];
        let plan = PartitionPlan::from_split_tree(domain(), tree, rects);
        assert_eq!(plan.locate(&[3.9, 1.0]), 0);
        assert_eq!(plan.locate(&[4.0, 1.0]), 1);
        assert_eq!(plan.locate(&[8.0, 8.0]), 1);
    }

    #[test]
    fn cluster_plan_round_trips_buckets() {
        let sample = PointSet::from_xy(&[(1.0, 1.0), (6.5, 6.5), (7.0, 7.0)]);
        let buckets = MiniBucketGrid::build(&domain(), 4, &sample).unwrap();
        let clusters = Dshc::cluster(&buckets, &DshcConfig::default());
        let plan = PartitionPlan::from_clusters(&buckets, &clusters).unwrap();
        assert_eq!(plan.num_partitions(), clusters.len());
        // Every sample point lands in the partition whose rect contains it.
        for p in sample.iter() {
            let pid = plan.locate(p) as usize;
            assert!(plan.rect(pid).contains_closed(p));
        }
        let counts = plan.count_sample(&sample);
        assert_eq!(counts.iter().sum::<u64>(), 3);
    }

    #[test]
    fn cluster_plan_rejects_incomplete_cover() {
        let sample = PointSet::from_xy(&[(1.0, 1.0)]);
        let buckets = MiniBucketGrid::build(&domain(), 4, &sample).unwrap();
        let clusters = vec![Cluster {
            rect: crate::intrect::IntRect::new(vec![0, 0], vec![1, 1]),
            count: 1,
        }];
        assert!(PartitionPlan::from_clusters(&buckets, &clusters).is_err());
    }

    #[test]
    fn router_interior_point_has_no_support() {
        let plan = PartitionPlan::from_grid(GridSpec::uniform(domain(), 2).unwrap());
        let router = plan.router(0.5);
        let routing = router.route(&[1.0, 1.0]);
        assert_eq!(routing.core, plan.locate(&[1.0, 1.0]));
        assert!(routing.support.is_empty());
    }

    #[test]
    fn router_boundary_point_supports_neighbors() {
        let plan = PartitionPlan::from_grid(GridSpec::uniform(domain(), 2).unwrap());
        let router = plan.router(0.5);
        // Near the center cross (4,4): supports the 3 other quadrants.
        let routing = router.route(&[3.8, 3.8]);
        assert_eq!(routing.support.len(), 3);
        // Near only the x boundary: supports 1.
        let routing = router.route(&[3.8, 1.0]);
        assert_eq!(routing.support.len(), 1);
    }

    #[test]
    fn router_matches_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let grid = GridSpec::uniform(domain(), 5).unwrap();
        let plan = PartitionPlan::from_grid(grid);
        let r = 0.7;
        let router = plan.router(r);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..500 {
            let x = [rng.gen_range(0.0..=8.0), rng.gen_range(0.0..=8.0)];
            let routing = router.route(&x);
            let core = plan.locate(&x);
            assert_eq!(routing.core, core);
            let mut expected: Vec<u32> = (0..plan.num_partitions() as u32)
                .filter(|&pid| pid != core && plan.rect(pid as usize).min_dist_sq(&x) <= r * r)
                .collect();
            expected.sort_unstable();
            assert_eq!(routing.support, expected);
        }
    }

    #[test]
    fn multi_tactic_plan_selects_per_partition() {
        // Left half very dense, right half sparse.
        let mut pts = Vec::new();
        for i in 0..4000 {
            pts.push((0.001 * (i % 2000) as f64, 0.001 * (i / 2) as f64));
        }
        pts.push((7.5, 7.5));
        let sample = PointSet::from_xy(&pts);
        let plan = PartitionPlan::from_grid(GridSpec::uniform(domain(), 2).unwrap());
        let mt = MultiTacticPlan::build(
            plan,
            &sample,
            1.0,
            params(),
            dod_detect::cost::PAPER_CANDIDATES,
            4,
            AllocationSpec::cost(),
        );
        assert_eq!(mt.algorithms.len(), 4);
        assert_eq!(mt.allocation.len(), 4);
        // The ultra-dense lower-left partition must pick Cell-Based
        // (Lemma 4.2 case 1).
        let dense_pid = mt.plan.locate(&[0.5, 0.5]) as usize;
        assert_eq!(mt.algorithms[dense_pid], AlgorithmKind::CellBased);
        assert!(mt.predicted_costs[dense_pid] > 0.0);
    }

    #[test]
    fn monolithic_plan_is_uniform() {
        let sample = PointSet::from_xy(&[(1.0, 1.0), (5.0, 5.0)]);
        let plan = PartitionPlan::from_grid(GridSpec::uniform(domain(), 2).unwrap());
        let mt = MultiTacticPlan::monolithic(
            plan,
            &sample,
            1.0,
            params(),
            AlgorithmKind::NestedLoop,
            2,
            AllocationSpec::round_robin(),
        );
        assert!(mt
            .algorithms
            .iter()
            .all(|&a| a == AlgorithmKind::NestedLoop));
        assert_eq!(mt.allocation, vec![0, 1, 0, 1]);
    }

    #[test]
    fn plan_context_clamps_targets() {
        let ctx = PlanContext::new(params(), 0, 0.005);
        assert_eq!(ctx.target_partitions, 1);
    }

    #[test]
    fn count_sample_scales() {
        let plan = PartitionPlan::from_grid(GridSpec::uniform(domain(), 2).unwrap());
        let sample = PointSet::from_xy(&[(1.0, 1.0), (1.5, 1.5), (7.0, 7.0)]);
        let counts = plan.count_sample(&sample);
        assert_eq!(counts.iter().sum::<u64>(), 3);
        assert_eq!(counts[plan.locate(&[1.0, 1.0]) as usize], 2);
    }

    #[test]
    fn drift_of_identical_distributions_is_zero() {
        assert_eq!(distribution_drift(&[1.0, 3.0], &[1.0, 3.0]), 0.0);
        // Scale invariance: only the shape matters.
        assert!(distribution_drift(&[1.0, 3.0], &[10.0, 30.0]).abs() < 1e-12);
        assert_eq!(distribution_drift(&[], &[]), 0.0);
    }

    #[test]
    fn drift_of_disjoint_distributions_is_one() {
        assert!((distribution_drift(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        // All mass vanished (or appeared from nowhere).
        assert_eq!(distribution_drift(&[1.0], &[]), 1.0);
        assert_eq!(distribution_drift(&[0.0], &[2.0]), 1.0);
    }

    #[test]
    fn drift_is_monotone_in_moved_mass() {
        let base = [5.0, 5.0];
        let small = distribution_drift(&base, &[6.0, 4.0]);
        let large = distribution_drift(&base, &[9.0, 1.0]);
        assert!(0.0 < small && small < large && large < 1.0);
        // A quarter of the mass moved: TV distance is exactly 0.2.
        assert!((small - 0.1).abs() < 1e-12);
        assert!((large - 0.4).abs() < 1e-12);
    }

    #[test]
    fn drift_ignores_non_finite_and_negative_mass() {
        let d = distribution_drift(&[f64::NAN, 1.0], &[-3.0, 1.0]);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn plan_drift_against_observed_counts() {
        let plan = PartitionPlan::from_grid(GridSpec::uniform(domain(), 2).unwrap());
        let sample = PointSet::from_xy(&[(1.0, 1.0), (6.0, 1.0), (1.0, 6.0), (6.0, 6.0)]);
        let mt = MultiTacticPlan::build(
            plan,
            &sample,
            1.0,
            params(),
            &[AlgorithmKind::NestedLoop],
            2,
            AllocationSpec::round_robin(),
        );
        // Observed exactly as estimated: no drift.
        assert!(mt.drift_against(&mt.estimated_counts).abs() < 1e-12);
        // Everything landed in one partition: strong drift.
        let mut skewed = vec![0.0; mt.num_partitions()];
        skewed[0] = 100.0;
        assert!(mt.drift_against(&skewed) > 0.5);
    }
}
